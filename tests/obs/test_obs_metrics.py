"""Tests for the metrics core: types, registry, drain/merge, exposition."""

import pickle
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    VOLUME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)


class TestLogBuckets:
    def test_ascending_unique_and_covers_hi(self):
        bounds = log_buckets(1e-6, 100.0, per_decade=3)
        assert list(bounds) == sorted(set(bounds))
        assert bounds[0] == 1e-6
        assert bounds[-1] >= 100.0

    def test_deterministic_across_calls(self):
        """Two processes computing the same spec must agree bitwise —
        the merge precondition; rounding to 6 significant digits makes
        the float math reproducible."""
        assert log_buckets(1e-6, 100.0, 3) == log_buckets(1e-6, 100.0, 3)
        assert LATENCY_BUCKETS == log_buckets(1e-6, 100.0, per_decade=3)
        assert VOLUME_BUCKETS == log_buckets(1.0, 1e9, per_decade=3)
        assert COUNT_BUCKETS == log_buckets(1.0, 1e6, per_decade=4)

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="lo"):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError, match="lo"):
            log_buckets(2.0, 1.0)
        with pytest.raises(ValueError, match="per_decade"):
            log_buckets(1.0, 10.0, per_decade=0)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        counter = Counter("c", "help")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_labeled_children_are_cached(self):
        counter = Counter("c", "help", labelnames=("kind",))
        child = counter.labels("engine")
        assert counter.labels("engine") is child
        child.inc(2)
        counter.labels("closed").inc()
        assert counter.sample_items() == {("closed",): 1.0, ("engine",): 2.0}

    def test_label_arity_checked(self):
        counter = Counter("c", "help", labelnames=("kind",))
        with pytest.raises(ValueError, match="label value"):
            counter.labels("a", "b")


class TestGauge:
    def test_set_inc_dec_set_max(self):
        gauge = Gauge("g", "help")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value == 4.0
        gauge.set_max(10.0)
        gauge.set_max(1.0)
        assert gauge.value == 10.0


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        hist = Histogram("h", "help", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 100.0, 1e6):
            hist.observe(value)
        sample = hist.sample_items()[()]
        # counts[i] covers (bounds[i-1], bounds[i]]; last is overflow.
        assert sample["counts"] == [2, 1, 1, 1]
        assert sample["count"] == 5
        assert sample["sum"] == pytest.approx(0.5 + 1.0 + 5.0 + 100.0 + 1e6)

    def test_summary_and_quantile(self):
        hist = Histogram("h", "help", bounds=(1.0, 2.0, 4.0))
        for _ in range(100):
            hist.observe(1.5)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(1.5)
        # All mass in (1, 2]: interpolated quantiles stay in that bucket.
        assert 1.0 <= summary["p50"] <= 2.0
        assert 1.0 <= summary["p95"] <= 2.0
        assert hist.quantile(0.0) >= 0.0
        assert hist.quantile(1.0) <= 2.0

    def test_quantile_empty_and_bounds_checked(self):
        hist = Histogram("h", "help", bounds=(1.0, 2.0))
        assert hist.quantile(0.5) == 0.0
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(1.5)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", "help", bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", "help", bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", "help", bounds=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry("laca")
        first = registry.counter("a_total", "help")
        assert registry.counter("a_total", "other help") is first
        assert registry.get("a_total") is first
        assert registry.get("missing") is None

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", "help")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("x", "help")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", "help", labelnames=("kind",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("x", "help", labelnames=("other",))

    def test_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", "help", bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket bounds"):
            registry.histogram("h", "help", bounds=(1.0, 3.0))

    def test_snapshot_renders_labeled_keys(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "", ("path",)).labels("engine").inc(3)
        registry.gauge("epoch", "").set(7)
        snap = registry.snapshot()
        assert snap["req_total{path=engine}"] == 3.0
        assert snap["epoch"] == 7.0

    def test_hooks_run_before_snapshot(self):
        registry = MetricsRegistry()
        depth = registry.gauge("queue_depth", "")
        live = {"depth": 0}
        registry.add_hook(lambda: depth.set(live["depth"]))
        live["depth"] = 42
        assert registry.snapshot()["queue_depth"] == 42.0

    def test_drain_resets_and_is_picklable(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "").inc(5)
        registry.histogram("h", "", bounds=(1.0, 2.0)).observe(1.5)
        registry.gauge("g", "").set(9)
        delta = registry.drain()
        # The delta must survive the pool's result queue.
        delta = pickle.loads(pickle.dumps(delta))
        names = {family["name"] for family in delta}
        assert names == {"c_total", "h"}  # gauges are point-in-time
        assert registry.counter("c_total", "").value == 0.0
        assert registry.get("h").summary()["count"] == 0
        assert registry.get("g").value == 9.0
        # Merging the drained delta restores the original totals.
        registry.merge(delta)
        assert registry.counter("c_total", "").value == 5.0
        assert registry.get("h").summary()["count"] == 1

    def test_merge_creates_missing_metrics(self):
        source = MetricsRegistry()
        source.counter("only_there_total", "made elsewhere", ("k",)).labels(
            "x"
        ).inc(2)
        source.histogram("vol", "", bounds=(1.0, 10.0)).observe(3.0)
        head = MetricsRegistry()
        head.merge(source.collect(run_hooks=False))
        assert head.get("only_there_total").sample_items() == {("x",): 2.0}
        assert head.get("vol").summary()["count"] == 1

    def test_merge_rejects_mismatched_histogram_bounds(self):
        source = MetricsRegistry()
        source.histogram("h", "", bounds=(1.0, 2.0)).observe(1.0)
        head = MetricsRegistry()
        head.histogram("h", "", bounds=(1.0, 2.0, 4.0))
        with pytest.raises(ValueError, match="bucket bounds"):
            head.merge(source.collect(run_hooks=False))

    def test_gauge_merge_is_last_write_wins(self):
        source = MetricsRegistry()
        source.gauge("g", "").set(3)
        head = MetricsRegistry()
        head.gauge("g", "").set(11)
        head.merge(source.collect(run_hooks=False))
        assert head.get("g").value == 3.0

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("kind",)).labels("x")
        hist = registry.histogram("h", "", bounds=(1.0, 2.0))

        def worker():
            for _ in range(500):
                counter.inc()
                hist.observe(1.5)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.get("c_total").sample_items()[("x",)] == 4000.0
        assert registry.get("h").summary()["count"] == 4000


class TestPrometheusText:
    def test_format_is_parseable(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", ("path",)).labels(
            "engine"
        ).inc(3)
        registry.histogram("lat", "latency", bounds=(0.1, 1.0)).observe(0.5)
        registry.gauge("epoch", "current epoch").set(2)
        text = registry.to_prometheus_text()
        lines = text.strip().splitlines()
        assert "# TYPE req_total counter" in lines
        assert "# TYPE lat histogram" in lines
        assert "# TYPE epoch gauge" in lines
        assert 'req_total{path="engine"} 3' in lines
        # Cumulative buckets: each le= includes everything below it.
        assert 'lat_bucket{le="0.1"} 0' in lines
        assert 'lat_bucket{le="1"} 1' in lines
        assert 'lat_bucket{le="+Inf"} 1' in lines
        assert "lat_sum 0.5" in lines
        assert "lat_count 1" in lines

    def test_bucket_counts_are_monotone_and_match_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "", bounds=LATENCY_BUCKETS)
        for value in (1e-7, 1e-3, 0.5, 2.0, 500.0):
            hist.observe(value)
        text = registry.to_prometheus_text()
        buckets = []
        for line in text.splitlines():
            if line.startswith("h_bucket"):
                buckets.append(int(line.rsplit(" ", 1)[1]))
        assert buckets == sorted(buckets)
        assert buckets[-1] == 5
        assert "h_count 5" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("kind",)).labels('we"ird\n').inc()
        text = registry.to_prometheus_text()
        assert 'c_total{kind="we\\"ird\\n"} 1' in text


def _apply(registry: MetricsRegistry, ops):
    """Replay a generated operation list against a fresh registry."""
    for kind, value in ops:
        if kind == "c":
            registry.counter("c_total", "", ("k",)).labels("x").inc(value)
        else:
            registry.histogram("h", "", bounds=(0.1, 1.0, 10.0)).observe(value)


def _totals(registry: MetricsRegistry):
    counter = registry.get("c_total")
    hist = registry.get("h")
    return (
        counter.sample_items() if counter is not None else {},
        hist.sample_items() if hist is not None else {},
    )


def _assert_totals_close(left, right):
    """Equal up to float-summation reassociation (bucket counts exact)."""
    counters_l, hists_l = left
    counters_r, hists_r = right
    assert counters_l == pytest.approx(counters_r)
    assert hists_l.keys() == hists_r.keys()
    for key in hists_l:
        sample_l, sample_r = hists_l[key], hists_r[key]
        assert sample_l["counts"] == sample_r["counts"]
        assert sample_l["bounds"] == sample_r["bounds"]
        assert sample_l["sum"] == pytest.approx(sample_r["sum"])


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["c", "h"]),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    max_size=30,
)


class TestMergeAlgebra:
    """Merging drained deltas must not depend on how they interleave —
    the property that makes the pool's worker → head metric shipping
    correct regardless of completion order."""

    @given(ops_a=_OPS, ops_b=_OPS)
    @settings(max_examples=60, deadline=None)
    def test_merge_commutes(self, ops_a, ops_b):
        a, b = MetricsRegistry(), MetricsRegistry()
        _apply(a, ops_a)
        _apply(b, ops_b)
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(a.collect(run_hooks=False))
        ab.merge(b.collect(run_hooks=False))
        ba.merge(b.collect(run_hooks=False))
        ba.merge(a.collect(run_hooks=False))
        _assert_totals_close(_totals(ab), _totals(ba))

    @given(ops_a=_OPS, ops_b=_OPS, ops_c=_OPS)
    @settings(max_examples=40, deadline=None)
    def test_merge_is_associative(self, ops_a, ops_b, ops_c):
        def build(ops):
            registry = MetricsRegistry()
            _apply(registry, ops)
            return registry.collect(run_hooks=False)

        left, right = MetricsRegistry(), MetricsRegistry()
        # (a + b) + c
        inner = MetricsRegistry()
        inner.merge(build(ops_a))
        inner.merge(build(ops_b))
        left.merge(inner.collect(run_hooks=False))
        left.merge(build(ops_c))
        # a + (b + c)
        inner = MetricsRegistry()
        inner.merge(build(ops_b))
        inner.merge(build(ops_c))
        right.merge(build(ops_a))
        right.merge(inner.collect(run_hooks=False))
        _assert_totals_close(_totals(left), _totals(right))

    @given(ops=_OPS)
    @settings(max_examples=40, deadline=None)
    def test_drain_partitions_the_stream(self, ops):
        """drain() then merge() equals never having drained: successive
        deltas partition the observation stream exactly."""
        direct = MetricsRegistry()
        _apply(direct, ops)
        chunked = MetricsRegistry()
        head = MetricsRegistry()
        for index, op in enumerate(ops):
            _apply(chunked, [op])
            if index % 3 == 2:
                head.merge(chunked.drain())
        head.merge(chunked.drain())
        _assert_totals_close(_totals(head), _totals(direct))
