"""Failure-injection tests: behaviour under controlled corruption.

Uses the corruption operators to verify the paper's robustness narrative
end-to-end and to confirm the library degrades *gracefully* (no crashes,
sensible outputs) under heavy damage to either signal.
"""

import numpy as np
import pytest

from repro.core.pipeline import LACA
from repro.eval.harness import evaluate_method, sample_seeds
from repro.eval.metrics import precision
from repro.graphs.corruption import (
    add_random_edges,
    drop_edges,
    mask_attributes,
    shuffle_attributes,
)


def _mean_precision(graph, model, seeds) -> float:
    values = []
    for seed in seeds:
        seed = int(seed)
        truth = graph.ground_truth_cluster(seed)
        values.append(precision(model.cluster(seed, truth.shape[0]), truth))
    return float(np.mean(values))


class TestEdgeCorruption:
    def test_laca_survives_heavy_edge_noise(self, medium_sbm):
        """Attributes anchor LACA when half the edges are random."""
        noisy = add_random_edges(medium_sbm, 1.0)
        seeds = sample_seeds(noisy, 8)
        with_attrs = LACA(metric="cosine", k=16).fit(noisy)
        without = LACA(use_snas=False).fit(noisy)
        assert _mean_precision(noisy, with_attrs, seeds) > _mean_precision(
            noisy, without, seeds
        )

    def test_runs_after_massive_edge_loss(self, medium_sbm):
        sparse = drop_edges(medium_sbm, 0.7)
        model = LACA(metric="cosine", k=16).fit(sparse)
        cluster = model.cluster(0, 20)
        assert cluster.shape == (20,)

    def test_precision_degrades_monotonically_ish(self, medium_sbm):
        """More corruption never *helps* substantially."""
        seeds = sample_seeds(medium_sbm, 6)
        model = LACA(use_snas=False)
        clean = _mean_precision(medium_sbm, model.fit(medium_sbm), seeds)
        heavy = _mean_precision(
            medium_sbm, model.fit(add_random_edges(medium_sbm, 2.0)), seeds
        )
        assert heavy <= clean + 0.05


class TestAttributeCorruption:
    def test_shuffled_attributes_collapse_snas_advantage(self, medium_sbm):
        """When attributes are nonsense, SNAS stops helping — LACA should
        fall back toward the topology-only ablation, not below it by much."""
        corrupted = shuffle_attributes(medium_sbm, 1.0)
        seeds = sample_seeds(corrupted, 6)
        with_attrs = LACA(metric="cosine", k=16).fit(corrupted)
        without = LACA(use_snas=False).fit(corrupted)
        gap = _mean_precision(corrupted, without, seeds) - _mean_precision(
            corrupted, with_attrs, seeds
        )
        assert gap < 0.45  # degraded, but not catastrophic

    def test_masking_runs_end_to_end(self, medium_sbm):
        masked = mask_attributes(medium_sbm, 0.8)
        model = LACA(metric="exp_cosine", k=16).fit(masked)
        assert model.cluster(3, 15).shape == (15,)

    def test_evaluation_harness_on_corrupted_graph(self, medium_sbm):
        corrupted = drop_edges(add_random_edges(medium_sbm, 0.3), 0.3)
        seeds = sample_seeds(corrupted, 4)
        evaluation = evaluate_method(corrupted, "LACA (C)", seeds)
        assert 0.0 <= evaluation.mean_precision <= 1.0
