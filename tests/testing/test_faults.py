"""Tests for the deterministic fault-injection harness.

The harness is itself test infrastructure, so its determinism contract
gets pinned here: counted triggers (``after``/``times``), field
matching, seeded probability replay, and pickle transport into workers.
"""

import pickle

import pytest

from repro.testing import FaultError, FaultPlan, FaultRule, UnpicklableFault


class TestFaultRule:
    def test_rejects_unknown_action_and_exc(self):
        with pytest.raises(ValueError, match="action"):
            FaultRule(site="x", action="explode")
        with pytest.raises(ValueError, match="exception kind"):
            FaultRule(site="x", exc="weird")
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="x", probability=1.5)
        with pytest.raises(ValueError, match="after"):
            FaultRule(site="x", after=-1)

    def test_matching_is_site_and_field_equality(self):
        rule = FaultRule(site="worker.block", match={"worker_id": 1})
        assert rule.matches("worker.block", {"worker_id": 1, "spawn": 0})
        assert not rule.matches("worker.block", {"worker_id": 2})
        assert not rule.matches("worker.reload", {"worker_id": 1})
        # a match on an absent field never fires
        assert not rule.matches("worker.block", {"spawn": 0})


class TestFaultPlan:
    def test_counted_trigger_after_and_times(self):
        plan = FaultPlan(
            [FaultRule(site="s", after=2, times=2, action="raise")]
        )
        fired = []
        for _ in range(6):
            try:
                plan.check("s")
                fired.append(False)
            except FaultError:
                fired.append(True)
        # observations 0,1 skipped (after=2), 2,3 fire (times=2), rest pass
        assert fired == [False, False, True, True, False, False]
        assert plan.fire_count("s") == 2

    def test_unmatched_fields_do_not_count(self):
        plan = FaultPlan(
            [FaultRule(site="s", match={"worker_id": 0}, after=1)]
        )
        plan.check("s", worker_id=1)  # does not count toward after
        plan.check("s", worker_id=0)  # first matching observation: skipped
        with pytest.raises(FaultError):
            plan.check("s", worker_id=0)

    def test_drop_returns_true_delay_returns_false(self):
        plan = FaultPlan(
            [
                FaultRule(site="d", action="drop"),
                FaultRule(site="w", action="delay", delay_s=0.0),
            ]
        )
        assert plan.check("d") is True
        assert plan.check("w") is False
        assert plan.fire_count() == 2

    def test_exception_kinds(self):
        plan = FaultPlan(
            [
                FaultRule(site="a", exc="oserror", message="disk full"),
                FaultRule(site="b", exc="unpicklable", message="boom"),
            ]
        )
        with pytest.raises(OSError, match="disk full"):
            plan.check("a")
        with pytest.raises(UnpicklableFault, match="boom"):
            plan.check("b")
        with pytest.raises(TypeError):
            pickle.dumps(UnpicklableFault("x"))

    def test_seeded_probability_replays_exactly(self):
        def run(seed):
            plan = FaultPlan(
                [FaultRule(site="s", probability=0.5, times=0)], seed=seed
            )
            outcomes = []
            for _ in range(32):
                try:
                    plan.check("s")
                    outcomes.append(0)
                except FaultError:
                    outcomes.append(1)
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert 0 < sum(run(7)) < 32  # actually probabilistic

    def test_from_spec_and_env(self, monkeypatch):
        plan = FaultPlan.from_spec(
            {"seed": 3, "rules": [{"site": "s", "action": "drop"}]}
        )
        assert plan.seed == 3 and plan.check("s") is True
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(
            "REPRO_FAULTS", '[{"site": "s", "action": "drop"}]'
        )
        env_plan = FaultPlan.from_env()
        assert env_plan is not None and env_plan.check("s") is True
        monkeypatch.setenv("REPRO_FAULTS", "{not json")
        with pytest.raises(ValueError, match="REPRO_FAULTS"):
            FaultPlan.from_env()

    def test_plan_pickles_with_counter_state(self):
        plan = FaultPlan([FaultRule(site="s", after=1)])
        plan.check("s")  # consume the skipped observation
        clone = pickle.loads(pickle.dumps(plan))
        with pytest.raises(FaultError):
            clone.check("s")  # counter state traveled
        with pytest.raises(FaultError):
            plan.check("s")  # original unaffected by the clone
