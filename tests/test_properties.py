"""Cross-cutting property-based tests (hypothesis) on core invariants.

Beyond the per-module property tests, these exercise compositions of the
core data structures over randomly generated inputs: cluster extraction,
metrics algebra, sweep-cut consistency, and LACA's output invariants.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.laca import top_k_cluster
from repro.core.sweep import sweep_cut
from repro.eval.metrics import conductance, f1_score, precision, recall
from repro.graphs.generators import SBMConfig, attributed_sbm


def _graph(seed: int):
    config = SBMConfig(n=70, n_communities=3, avg_degree=6.0, d=10)
    return attributed_sbm(config, seed=seed)


class TestTopKProperties:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        size=st.integers(min_value=1, max_value=60),
        node=st.integers(min_value=0, max_value=69),
    )
    @settings(max_examples=50, deadline=None)
    def test_size_seed_and_uniqueness(self, seed, size, node):
        rng = np.random.default_rng(seed)
        scores = rng.random(70) * (rng.random(70) < 0.5)
        cluster = top_k_cluster(scores, size, seed=node)
        assert cluster.shape[0] == min(size, 70)
        assert node in cluster
        assert np.unique(cluster).shape[0] == cluster.shape[0]

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_size(self, seed):
        """A larger cluster always contains the smaller one."""
        rng = np.random.default_rng(seed)
        scores = rng.random(50)
        small = set(top_k_cluster(scores, 5, seed=0))
        large = set(top_k_cluster(scores, 20, seed=0))
        assert small <= large


class TestMetricAlgebra:
    @given(
        seed=st.integers(min_value=0, max_value=300),
        k=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_precision_recall_duality(self, seed, k):
        """With |Cs| = |Ys|, precision equals recall exactly."""
        rng = np.random.default_rng(seed)
        truth = rng.choice(100, size=k, replace=False)
        predicted = rng.choice(100, size=k, replace=False)
        assert precision(predicted, truth) == recall(predicted, truth)

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_f1_between_min_and_max(self, seed):
        rng = np.random.default_rng(seed)
        truth = rng.choice(60, size=rng.integers(1, 30), replace=False)
        predicted = rng.choice(60, size=rng.integers(1, 30), replace=False)
        p, r = precision(predicted, truth), recall(predicted, truth)
        f1 = f1_score(predicted, truth)
        assert min(p, r) - 1e-12 <= f1 <= max(p, r) + 1e-12

    @given(
        graph_seed=st.integers(min_value=0, max_value=40),
        set_seed=st.integers(min_value=0, max_value=100),
        size=st.integers(min_value=1, max_value=35),
    )
    @settings(max_examples=40, deadline=None)
    def test_conductance_complement_symmetry(self, graph_seed, set_seed, size):
        """φ(C) = φ(V∖C): cut is shared, min-volume side is shared."""
        graph = _graph(graph_seed)
        rng = np.random.default_rng(set_seed)
        cluster = rng.choice(graph.n, size=size, replace=False)
        complement = np.setdiff1d(np.arange(graph.n), cluster)
        assert np.isclose(
            conductance(graph, cluster), conductance(graph, complement)
        )


class TestSweepProperties:
    @given(
        graph_seed=st.integers(min_value=0, max_value=30),
        score_seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_sweep_minimum_is_achievable(self, graph_seed, score_seed):
        graph = _graph(graph_seed)
        rng = np.random.default_rng(score_seed)
        scores = rng.random(graph.n)
        result = sweep_cut(graph, scores)
        assert np.isclose(
            conductance(graph, result.cluster), result.conductance
        )
        assert (result.profile >= result.conductance - 1e-12).all()
