"""End-to-end integration tests: the paper's headline claims in miniature.

These exercise the full pipeline (generator → TNAM → diffusion → cluster →
metrics) and assert the qualitative results the evaluation section reports.
"""

import numpy as np
import pytest

import repro
from repro import LACA, load_dataset, make_method
from repro.eval.harness import evaluate_method, sample_seeds

SCALE = 0.15


@pytest.fixture(scope="module")
def cora():
    return load_dataset("cora", scale=SCALE)


@pytest.fixture(scope="module")
def yelp():
    return load_dataset("yelp", scale=SCALE)


@pytest.fixture(scope="module")
def reddit():
    return load_dataset("reddit", scale=SCALE)


class TestHeadlineClaims:
    def test_laca_beats_pure_topology_on_noisy_links(self, cora):
        """Table V shape: LACA (C) > PR-Nibble on citation graphs."""
        seeds = sample_seeds(cora, 10)
        laca = evaluate_method(cora, "LACA (C)", seeds)
        nibble = evaluate_method(cora, "PR-Nibble", seeds)
        assert laca.mean_precision > nibble.mean_precision

    def test_laca_beats_pure_attributes_on_weak_attrs(self, reddit):
        """Table V shape: SimAttr collapses on Reddit; LACA does not."""
        seeds = sample_seeds(reddit, 8)
        laca = evaluate_method(reddit, "LACA (C)", seeds)
        simattr = evaluate_method(reddit, "SimAttr (C)", seeds)
        assert laca.mean_precision > simattr.mean_precision + 0.2

    def test_attribute_methods_shine_on_yelp(self, yelp):
        """Table V shape: on Yelp, SimAttr ≈ LACA ≫ PR-Nibble."""
        seeds = sample_seeds(yelp, 8)
        simattr = evaluate_method(yelp, "SimAttr (C)", seeds)
        nibble = evaluate_method(yelp, "PR-Nibble", seeds)
        laca = evaluate_method(yelp, "LACA (C)", seeds)
        assert simattr.mean_precision > nibble.mean_precision
        assert laca.mean_precision > nibble.mean_precision

    def test_snas_ablation_hurts(self, cora):
        """Table VI shape: removing SNAS costs precision."""
        seeds = sample_seeds(cora, 10)
        full = evaluate_method(cora, "LACA (C)", seeds)
        ablated = evaluate_method(cora, "LACA (w/o SNAS)", seeds)
        assert full.mean_precision > ablated.mean_precision

    def test_online_stage_is_fast(self, cora):
        """Fig. 7 shape: LACA's online stage runs in milliseconds and its
        preprocessing is cheaper than embedding-based competitors'."""
        seeds = sample_seeds(cora, 5)
        laca = evaluate_method(cora, "LACA (C)", seeds)
        pane = evaluate_method(cora, "PANE (K-NN)", seeds)
        assert laca.mean_online_seconds < 0.5
        assert laca.preprocessing_seconds < pane.preprocessing_seconds * 5


class TestLocality:
    def test_output_volume_scales_with_inverse_epsilon(self, cora):
        """Lemma IV.3: explored volume bounded by O(1/((1-α)ε))."""
        model_loose = LACA(metric="cosine", epsilon=1e-3).fit(cora)
        model_tight = LACA(metric="cosine", epsilon=1e-6).fit(cora)
        loose = model_loose.scores(0)
        tight = model_tight.scores(0)
        vol_loose = cora.vector_volume(loose.rwr.q)
        assert vol_loose <= 2.0 / ((1.0 - 0.8) * 1e-3) + 1e-6
        assert loose.support_size <= tight.support_size

    def test_explored_region_grows_with_budget(self, cora):
        sizes = []
        for epsilon in [1e-2, 1e-4, 1e-6]:
            model = LACA(metric="cosine", epsilon=epsilon).fit(cora)
            sizes.append(model.scores(3).support_size)
        assert sizes[0] <= sizes[1] <= sizes[2]


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_top_level_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_snippet(self, cora):
        model = LACA(metric="cosine").fit(cora)
        cluster = model.cluster(seed=0, size=20)
        assert len(cluster) == 20

    def test_make_method_round_trip(self, cora):
        method = make_method("HK-Relax").fit(cora)
        assert method.cluster(0, 10).shape == (10,)
