"""Chaos replay: a mixed trace through the pool, with and without a
worker kill, must drain to bitwise-identical answers.

Replay schedules are pure functions of ``(scenario, ReplayConfig)``, so
two runs submit exactly the same queries in the same order; the fault
path (kill → supervise → respawn → idempotent block retry) must be
invisible in the answers, only in the stats.
"""

import numpy as np
import pytest

from repro.core.config import LacaConfig
from repro.core.pipeline import LACA
from repro.graphs import GraphStore
from repro.scenarios import DynamicSBMConfig, ReplayConfig, generate_dynamic_sbm, replay
from repro.serving import PoolClusterService
from repro.testing import FaultPlan, FaultRule


@pytest.fixture(scope="module")
def scenario():
    config = DynamicSBMConfig(
        n=180,
        n_communities=3,
        avg_degree=6.0,
        d=16,
        epochs=3,
        churn_fraction=0.03,
        birth_fraction=0.02,
        death_fraction=0.0,
        drift_fraction=0.03,
    )
    return generate_dynamic_sbm(config, seed=11)


def _run(scenario, fault_plan=None):
    # Fresh fit per run: apply_update refreshes the model in place.
    model = LACA(LacaConfig(k=8)).fit(scenario.base)
    store = GraphStore(scenario.base, history=scenario.epochs + 1)
    service = PoolClusterService(
        model,
        workers=2,
        store=store,
        fault_plan=fault_plan,
        backoff_base_s=0.05,
        max_wait_s=0.0,
        max_batch=4,
        cache_size=0,
    )
    try:
        result = replay(
            service,
            scenario,
            ReplayConfig(
                queries_per_epoch=16, seed=21, keep_answers=True,
                drain_before_update=True,
            ),
        )
        stats = service.stats()
    finally:
        service.close(timeout=60)
    return result, stats


class TestChaosReplay:
    def test_worker_kill_mid_replay_is_answer_invisible(self, scenario):
        clean, clean_stats = _run(scenario)
        plan = FaultPlan(
            [
                FaultRule(
                    site="worker.block",
                    match={"worker_id": 0, "spawn": 0},
                    action="exit",
                )
            ]
        )
        chaotic, chaotic_stats = _run(scenario, fault_plan=plan)

        # The kill actually happened and was healed ...
        assert chaotic_stats["worker_restarts"] >= 1
        assert clean_stats["worker_restarts"] == 0

        # ... every query drained (nothing shed, nothing hung) ...
        for result in (clean, chaotic):
            assert result.summary()["queries"] == scenario.epochs * 16
            assert result.summary()["shed"] == 0

        # ... and the answer stream is bitwise identical.
        assert len(clean.answers) == len(chaotic.answers)
        for a, b in zip(clean.answers, chaotic.answers):
            assert a[:3] == b[:3]
            np.testing.assert_array_equal(a[3], b[3])
