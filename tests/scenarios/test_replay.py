"""Tests for the event-stream replay harness.

Covers the seeded schedules (Zipf seed sampling, bursty arrivals), the
mixed read/write loop against ``ClusterService`` (closed and open
loop), drift-metric reporting, the bitwise verify-vs-refit mode, and
Enron-style timestamped-edge replay via ``GraphDelta.from_mapping``.
"""

import numpy as np
import pytest

from repro.core.pipeline import LACA
from repro.graphs import GraphStore
from repro.scenarios import (
    DynamicSBMConfig,
    EventStreamScenario,
    ReplayConfig,
    SeedTracker,
    arrival_offsets,
    generate_dynamic_sbm,
    partition_drift,
    parse_timestamped_edges,
    replay,
    sample_seeds_zipf,
    staleness_ledger,
    timestamped_edge_deltas,
)
from repro.serving import ClusterService


@pytest.fixture(scope="module")
def scenario():
    config = DynamicSBMConfig(
        n=260,
        n_communities=4,
        avg_degree=6.0,
        d=24,
        epochs=4,
        churn_fraction=0.03,
        birth_fraction=0.02,
        death_fraction=0.01,
        drift_fraction=0.04,
        merge_epochs=(3,),
    )
    return generate_dynamic_sbm(config, seed=17)


def _service(scenario, **kwargs):
    model = LACA().fit(scenario.base)
    kwargs.setdefault("cache_size", 1024)
    store = GraphStore(scenario.base, history=scenario.epochs + 1)
    return ClusterService(model, store=store, **kwargs)


class TestSchedules:
    def test_zipf_sampling_is_seeded_and_skewed(self):
        candidates = np.arange(500)
        rng = np.random.default_rng(4)
        draws = sample_seeds_zipf(candidates, 4000, 1.2, rng)
        assert draws.shape == (4000,)
        assert np.isin(draws, candidates).all()
        # Heavy skew: the most popular seed dominates a uniform share.
        _, counts = np.unique(draws, return_counts=True)
        assert counts.max() > 10 * (4000 / 500)
        again = sample_seeds_zipf(candidates, 4000, 1.2, np.random.default_rng(4))
        np.testing.assert_array_equal(draws, again)

    def test_arrival_offsets_bursty_and_monotone(self):
        rng = np.random.default_rng(0)
        offsets = arrival_offsets(
            400, 100.0, rng, burst_every=50, burst_length=10, burst_factor=8.0
        )
        assert offsets.shape == (400,)
        assert np.all(np.diff(offsets) >= 0)
        gaps = np.diff(np.concatenate([[0.0], offsets]))
        index = np.arange(400)
        in_burst = (index % 50) < 10
        # Burst arrivals are markedly tighter than steady-state ones.
        assert gaps[in_burst].mean() < gaps[~in_burst].mean() / 3


class TestReplayLoop:
    def test_closed_loop_reports_and_verifies(self, scenario):
        with _service(scenario) as service:
            result = replay(
                service,
                scenario,
                ReplayConfig(
                    queries_per_epoch=20, seed=1, verify_every=2,
                    keep_answers=True,
                ),
            )
        assert len(result.epochs) == scenario.epochs
        summary = result.summary()
        assert summary["queries"] == scenario.epochs * 20
        assert summary["mean_tracking_recall"] > 0.5
        assert summary["all_verified_bitwise"] is True
        assert summary["query_p50_ms"] > 0
        for report in result.epochs:
            assert report["n"] == scenario.n_at(report["epoch"])
            assert report["update_s"] > 0
            assert 0.0 <= report["mean_recall"] <= 1.0
            assert 0.0 <= report["mean_f1"] <= 1.0
            if report["epoch"] > 1:
                assert 0.0 <= report["tracked_stability"] <= 1.0
        # keep_answers captured every drained query + tracked probes
        assert result.answers
        epochs_seen = {answer[0] for answer in result.answers}
        assert epochs_seen == {r["epoch"] for r in result.epochs}

    def test_replay_is_deterministic_for_a_seed(self, scenario):
        def run():
            with _service(scenario) as service:
                return replay(
                    service,
                    scenario,
                    ReplayConfig(queries_per_epoch=16, seed=5, keep_answers=True),
                ).answers

        assert run() == run()

    def test_open_loop_mode_paces_arrivals(self, scenario):
        with _service(scenario) as service:
            result = replay(
                service,
                scenario,
                ReplayConfig(
                    queries_per_epoch=8, seed=2, mode="open", rate_qps=400.0
                ),
            )
        assert result.summary()["queries"] == scenario.epochs * 8

    def test_fixed_size_queries(self, scenario):
        with _service(scenario) as service:
            result = replay(
                service,
                scenario,
                ReplayConfig(queries_per_epoch=8, seed=3, size=15,
                             keep_answers=True),
            )
        sizes = {answer[2] for answer in result.answers}
        assert 15 in sizes

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ReplayConfig(mode="sideways")


class TestDriftMetrics:
    def test_seed_tracker_jaccard(self):
        tracker = SeedTracker([3])
        assert tracker.observe({3: np.array([1, 2, 3])}) == {}
        out = tracker.observe({3: np.array([2, 3, 4])})
        assert out[3] == pytest.approx(2 / 4)
        assert tracker.observe({3: np.array([2, 3, 4])})[3] == 1.0

    def test_partition_drift_counts_changes_not_births(self, scenario):
        final = scenario.records[-1]
        previous = scenario.labels_at(scenario.epochs - 1)
        drift = partition_drift(previous, final.labels)
        changed = np.flatnonzero(
            final.labels[: previous.shape[0]] != previous
        )
        assert drift == pytest.approx(changed.shape[0] / previous.shape[0])

    def test_staleness_ledger_aggregates(self):
        reports = [
            {"cache_promotions": 2, "cache_invalidations": 6, "cache_hits": 4},
            {"cache_promotions": 1, "cache_invalidations": 1, "cache_hits": 3},
        ]
        ledger = staleness_ledger(reports)
        assert ledger["entries_promoted"] == 3
        assert ledger["entries_invalidated"] == 7
        assert ledger["survival_rate"] == pytest.approx(0.3)
        assert ledger["stale_free_hits"] == 3


class TestTimestampedReplay:
    def _events(self, count=2400, nodes=120, seed=0):
        rng = np.random.default_rng(seed)
        endpoints = rng.integers(0, nodes, size=(count, 2))
        times = np.cumsum(rng.exponential(1.0, size=count))
        return np.column_stack([endpoints, times])

    def test_lift_into_base_and_deltas(self):
        events = self._events()
        base, deltas = timestamped_edge_deltas(events, windows=6, base_windows=2)
        assert len(deltas) == 4
        store = GraphStore(base)
        for delta in deltas:
            head = store.apply(delta)
        # Node ids are remapped by first appearance: contiguous range.
        assert head.n >= base.n
        assert head.degrees.min() >= 1.0

    def test_parse_timestamped_edges(self):
        lines = ["# comment", "", "7 9 10.5", "9 3 11.0"]
        events = parse_timestamped_edges(lines)
        np.testing.assert_array_equal(
            events, [[7.0, 9.0, 10.5], [9.0, 3.0, 11.0]]
        )
        with pytest.raises(ValueError, match="u v t"):
            parse_timestamped_edges(["1 2"])

    def test_replay_event_stream_without_truth(self):
        events = self._events(seed=3)
        stream = EventStreamScenario.from_timestamped_edges(
            events, windows=5, base_windows=2
        )
        model = LACA().fit(stream.base)
        store = GraphStore(stream.base, history=stream.epochs + 1)
        with ClusterService(model, store=store) as service:
            result = replay(
                service, stream, ReplayConfig(queries_per_epoch=10, seed=7)
            )
        summary = result.summary()
        assert summary["epochs"] == stream.epochs
        assert summary["queries"] == stream.epochs * 10
        # No planted truth: quality metrics are absent, not zero.
        assert summary["mean_tracking_recall"] is None
        assert summary["all_verified_bitwise"] is None
