"""Property tests for the evolving-community generators.

The two generator invariants everything downstream leans on:

1. **Bitwise replay parity** — pushing the delta stream through a
   ``GraphStore`` reproduces, at every epoch, exactly the snapshot
   ``DynamicScenario.graph_at`` builds from scratch (adjacency CSR,
   degrees, inverse degrees, attributes, communities — all bitwise).
2. **Event-consistent ground truth** — label changes are confined to
   each delta's touched set, event records match what actually happened
   to the partition, and the whole scenario is a pure function of
   ``(config, seed)``.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import GraphStore
from repro.scenarios import DynamicSBMConfig, generate_dynamic_sbm


def _config(epochs=3, **overrides):
    params = dict(
        n=140,
        n_communities=3,
        avg_degree=6.0,
        d=16,
        epochs=epochs,
        churn_fraction=0.04,
        birth_fraction=0.03,
        death_fraction=0.01,
        drift_fraction=0.05,
    )
    params.update(overrides)
    return DynamicSBMConfig(**params)


def _assert_bitwise_equal(snapshot, reference):
    np.testing.assert_array_equal(
        snapshot.adjacency.indptr, reference.adjacency.indptr
    )
    np.testing.assert_array_equal(
        snapshot.adjacency.indices, reference.adjacency.indices
    )
    np.testing.assert_array_equal(
        snapshot.adjacency.data, reference.adjacency.data
    )
    np.testing.assert_array_equal(snapshot.degrees, reference.degrees)
    np.testing.assert_array_equal(snapshot.inv_degrees, reference.inv_degrees)
    np.testing.assert_array_equal(snapshot.attributes, reference.attributes)
    np.testing.assert_array_equal(snapshot.communities, reference.communities)
    np.testing.assert_array_equal(
        snapshot.secondary_communities, reference.secondary_communities
    )


class TestReplayParity:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_store_replay_bitwise_equals_from_scratch(self, seed):
        scenario = generate_dynamic_sbm(
            _config(merge_epochs=(2,), split_epochs=(3,)), seed=seed
        )
        store = GraphStore(scenario.base, history=scenario.epochs + 1)
        for record in scenario.records:
            head = store.apply(record.delta)
            _assert_bitwise_equal(head, scenario.graph_at(record.epoch))

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=5, deadline=None)
    def test_structure_only_stream_replays(self, seed):
        """No attribute events at all still yields a legal delta stream."""
        scenario = generate_dynamic_sbm(
            _config(drift_fraction=0.0, death_fraction=0.0), seed=seed
        )
        store = GraphStore(scenario.base)
        for record in scenario.records:
            head = store.apply(record.delta)
            _assert_bitwise_equal(head, scenario.graph_at(record.epoch))


class TestGroundTruthConsistency:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_label_changes_confined_to_touched_nodes(self, seed):
        """Epoch-aware cache invalidation is sufficient: any node whose
        planted label changed appears in that delta's touched set."""
        scenario = generate_dynamic_sbm(
            _config(merge_epochs=(2,), split_epochs=(3,)), seed=seed
        )
        for record in scenario.records:
            previous = scenario.labels_at(record.epoch - 1)
            touched = record.delta.touched_nodes(previous.shape[0])
            changed = np.flatnonzero(
                record.labels[: previous.shape[0]] != previous
            )
            assert np.isin(changed, touched).all()

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_events_match_partition_history(self, seed):
        scenario = generate_dynamic_sbm(
            _config(epochs=4, merge_epochs=(2,), split_epochs=(3,)), seed=seed
        )
        for record in scenario.records:
            previous = scenario.labels_at(record.epoch - 1)
            labels = record.labels
            for event in record.events:
                if event["kind"] == "merge":
                    # The absorbed community is gone...
                    assert not np.any(labels == event["source"])
                    # ...and its former members now carry the target label.
                    former = np.flatnonzero(previous == event["source"])
                    assert former.shape[0] == event["moved"]
                    assert np.all(labels[former] == event["target"])
                elif event["kind"] == "split":
                    seceded = np.array(event["nodes"], dtype=np.int64)
                    assert seceded.shape[0] == event["moved"] > 0
                    # Every seceded member came from the source community
                    # and now carries the freshly minted label.
                    assert np.all(previous[seceded] == event["source"])
                    assert np.all(labels[seceded] == event["new"])
                elif event["kind"] == "birth":
                    assert labels.shape[0] - previous.shape[0] == event["count"]
                    assert record.delta.add_nodes == event["count"]
                elif event["kind"] == "death":
                    retired = np.flatnonzero(
                        (labels[: previous.shape[0]] == -1) & (previous >= 0)
                    )
                    assert retired.shape[0] == event["count"]

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=5, deadline=None)
    def test_deterministic_in_config_and_seed(self, seed):
        config = _config(merge_epochs=(2,))
        first = generate_dynamic_sbm(config, seed=seed)
        second = generate_dynamic_sbm(config, seed=seed)
        for a, b in zip(first.records, second.records):
            assert a.delta.to_mapping() == b.delta.to_mapping()
            np.testing.assert_array_equal(a.labels, b.labels)
            assert a.events == b.events


class TestScenarioSurface:
    def test_ground_truth_and_counts(self):
        scenario = generate_dynamic_sbm(_config(), seed=5)
        assert scenario.epochs == 3
        assert scenario.n_at(0) == scenario.base.n
        final = scenario.records[-1]
        assert scenario.n_at(scenario.epochs) == final.labels.shape[0]
        live = scenario.community_nodes(scenario.epochs)
        seed_node = int(live[0])
        truth = scenario.ground_truth(scenario.epochs, seed_node)
        assert seed_node in truth
        label = final.labels[seed_node]
        assert truth.shape[0] == int(np.sum(final.labels == label))

    def test_retired_node_is_singleton_truth(self):
        scenario = generate_dynamic_sbm(
            _config(death_fraction=0.05), seed=9
        )
        labels = scenario.labels_at(scenario.epochs)
        retired = np.flatnonzero(labels == -1)
        assert retired.shape[0] > 0
        truth = scenario.ground_truth(scenario.epochs, int(retired[0]))
        np.testing.assert_array_equal(truth, [int(retired[0])])

    def test_degree_floor_holds_throughout(self):
        """No event sequence may isolate a node (snapshots reject it)."""
        scenario = generate_dynamic_sbm(
            _config(death_fraction=0.08, churn_fraction=0.1), seed=1
        )
        store = GraphStore(scenario.base)
        for record in scenario.records:
            head = store.apply(record.delta)
            assert head.degrees.min() >= 1.0
