"""Tests for the randomized truncated SVD (Algo 3's first step)."""

import numpy as np
import scipy.sparse as sp
import pytest

from repro.attributes.svd import randomized_svd, truncated_svd


def _low_rank_matrix(rng, n=200, d=50, rank=5, noise=0.01):
    left = rng.normal(size=(n, rank))
    right = rng.normal(size=(rank, d))
    return left @ right + noise * rng.normal(size=(n, d))


class TestRandomizedSVD:
    def test_shapes(self, rng):
        matrix = _low_rank_matrix(rng)
        u, sigma, vt = randomized_svd(matrix, k=5, rng=rng)
        assert u.shape == (200, 5)
        assert sigma.shape == (5,)
        assert vt.shape == (5, 50)

    def test_orthonormal_columns(self, rng):
        matrix = _low_rank_matrix(rng)
        u, _, vt = randomized_svd(matrix, k=5, rng=rng)
        assert np.allclose(u.T @ u, np.eye(5), atol=1e-8)
        assert np.allclose(vt @ vt.T, np.eye(5), atol=1e-8)

    def test_reconstructs_low_rank(self, rng):
        matrix = _low_rank_matrix(rng, noise=0.0)
        u, sigma, vt = randomized_svd(matrix, k=5, rng=rng)
        reconstruction = (u * sigma) @ vt
        relative = np.linalg.norm(matrix - reconstruction) / np.linalg.norm(matrix)
        assert relative < 1e-8

    def test_matches_exact_singular_values(self, rng):
        matrix = _low_rank_matrix(rng, noise=0.05)
        _, sigma, _ = randomized_svd(matrix, k=5, rng=rng)
        exact = np.linalg.svd(matrix, compute_uv=False)[:5]
        assert np.allclose(sigma, exact, rtol=1e-3)

    def test_sparse_input(self, rng):
        matrix = sp.random(300, 80, density=0.05, random_state=1, format="csr")
        u, sigma, vt = randomized_svd(matrix, k=4, rng=rng)
        assert u.shape == (300, 4)
        assert (np.diff(sigma) <= 1e-12).all()  # non-increasing

    def test_k_larger_than_dims_clamped(self, rng):
        matrix = rng.normal(size=(10, 6))
        u, sigma, _ = randomized_svd(matrix, k=50, rng=rng)
        assert sigma.shape[0] == 6

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError, match="positive"):
            randomized_svd(rng.normal(size=(5, 5)), k=0, rng=rng)


class TestTruncatedSVD:
    def test_exact_branch_for_small(self, rng):
        matrix = _low_rank_matrix(rng, n=50, d=20)
        u, sigma, vt = truncated_svd(matrix, k=5)
        exact = np.linalg.svd(matrix, compute_uv=False)[:5]
        assert np.allclose(sigma, exact)

    def test_lemma_v1_gram_error_bound(self, rng):
        """‖(UΛ)(UΛ)ᵀ − XXᵀ‖₂ ≤ λ_{k+1}² (Lemma V.1), exact branch."""
        matrix = _low_rank_matrix(rng, n=60, d=30, rank=8, noise=0.3)
        k = 4
        u, sigma, _ = truncated_svd(matrix, k=k)
        gram_approx = (u * sigma) @ (u * sigma).T
        gram = matrix @ matrix.T
        spectral_error = np.linalg.norm(gram - gram_approx, ord=2)
        all_sigma = np.linalg.svd(matrix, compute_uv=False)
        assert spectral_error <= all_sigma[k] ** 2 + 1e-8

    def test_randomized_branch_for_large(self, rng):
        matrix = _low_rank_matrix(rng, n=600, d=500, rank=6)
        u, sigma, _ = truncated_svd(matrix, k=6, exact_threshold=100, rng=rng)
        exact = np.linalg.svd(matrix, compute_uv=False)[:6]
        assert np.allclose(sigma, exact, rtol=1e-2)
