"""Tests for TNAM construction (Algo 3 / Eq. 10 / Eq. 18)."""

import numpy as np
import pytest

from repro.graphs.graph import normalize_rows
from repro.attributes.snas import snas_matrix
from repro.attributes.tnam import TNAM, build_tnam


def _bow_attrs(rng, n=60, d=20):
    attrs = rng.exponential(size=(n, d)) * (rng.random((n, d)) < 0.4)
    attrs[attrs.sum(axis=1) == 0, 0] = 1.0
    return normalize_rows(attrs)


class TestCosineTNAM:
    def test_dimensions(self, rng):
        attrs = _bow_attrs(rng)
        tnam = build_tnam(attrs, k=8, metric="cosine", rng=rng)
        assert tnam.z.shape == (60, 8)
        assert tnam.metric == "cosine"
        assert tnam.n == 60

    def test_approximates_snas_at_full_rank(self, rng):
        attrs = _bow_attrs(rng, n=40, d=10)
        tnam = build_tnam(attrs, k=10, metric="cosine", rng=rng)
        exact = snas_matrix(attrs, "cosine")
        assert np.allclose(tnam.dense_snas(), exact, atol=1e-6)

    def test_low_rank_still_close(self, rng):
        attrs = _bow_attrs(rng, n=80, d=40)
        tnam = build_tnam(attrs, k=16, metric="cosine", rng=rng)
        exact = snas_matrix(attrs, "cosine")
        error = np.abs(tnam.dense_snas() - exact).mean()
        assert error < 0.02

    def test_snas_pair_accessor(self, rng):
        attrs = _bow_attrs(rng, n=30, d=10)
        tnam = build_tnam(attrs, k=10, metric="cosine", rng=rng)
        assert np.isclose(tnam.snas(2, 5), tnam.dense_snas()[2, 5])

    def test_snas_rows_slices(self, rng):
        attrs = _bow_attrs(rng, n=30, d=10)
        tnam = build_tnam(attrs, k=5, metric="cosine", rng=rng)
        support = np.array([1, 4, 9])
        assert np.allclose(tnam.snas_rows(support), tnam.z[support])


class TestExpCosineTNAM:
    def test_dimensions_are_2k(self, rng):
        attrs = _bow_attrs(rng)
        tnam = build_tnam(attrs, k=8, metric="exp_cosine", rng=rng)
        assert tnam.z.shape == (60, 16)

    def test_approximates_exp_snas(self, rng):
        attrs = _bow_attrs(rng, n=50, d=12)
        exact = snas_matrix(attrs, "exp_cosine")
        # Average several ORF draws to beat the estimator variance.
        approx = np.zeros_like(exact)
        draws = 24
        for draw in range(draws):
            tnam = build_tnam(
                attrs, k=32, metric="exp_cosine", rng=np.random.default_rng(draw)
            )
            approx += tnam.dense_snas()
        approx /= draws
        assert np.abs(approx - exact).mean() < 0.05


class TestAblationsAndAlternatives:
    def test_without_svd_uses_raw_attributes(self, rng):
        attrs = _bow_attrs(rng, n=40, d=12)
        tnam = build_tnam(attrs, k=6, metric="cosine", use_svd=False, rng=rng)
        # Without the k-SVD reduction the feature width is the raw d.
        assert tnam.z.shape == (40, 12)
        exact = snas_matrix(attrs, "cosine")
        assert np.allclose(tnam.dense_snas(), exact, atol=1e-9)

    def test_jaccard_factorization(self, rng):
        attrs = _bow_attrs(rng, n=40, d=12)
        tnam = build_tnam(attrs, k=40, metric="jaccard", rng=rng)
        exact = snas_matrix(attrs, "jaccard")
        assert np.abs(tnam.dense_snas() - exact).mean() < 0.05

    def test_pearson_factorization(self, rng):
        attrs = _bow_attrs(rng, n=40, d=12)
        tnam = build_tnam(attrs, k=40, metric="pearson", rng=rng)
        exact = snas_matrix(attrs, "pearson")
        assert np.abs(tnam.dense_snas() - exact).mean() < 0.05

    def test_unknown_metric_raises(self, rng):
        with pytest.raises(ValueError, match="unknown metric"):
            build_tnam(_bow_attrs(rng), metric="manhattan")

    def test_invalid_k_raises(self, rng):
        with pytest.raises(ValueError, match="positive"):
            build_tnam(_bow_attrs(rng), k=0, use_svd=False)


class TestDataclass:
    def test_frozen(self, rng):
        tnam = build_tnam(_bow_attrs(rng), k=4)
        with pytest.raises(AttributeError):
            tnam.k = 8
