"""Tests for the SNAS metrics (Eq. 1-4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.graphs.graph import normalize_rows
from repro.attributes.snas import (
    METRIC_NAMES,
    kernel_matrix,
    snas_from_kernel,
    snas_matrix,
)


def _random_bow(rng, n=20, d=8):
    """Random non-negative bag-of-words-like attributes."""
    attrs = rng.exponential(size=(n, d)) * (rng.random((n, d)) < 0.5)
    attrs[attrs.sum(axis=1) == 0, 0] = 1.0
    return normalize_rows(attrs)


class TestKernels:
    def test_cosine_diagonal_is_one(self, rng):
        attrs = _random_bow(rng)
        kernel = kernel_matrix(attrs, "cosine")
        assert np.allclose(np.diag(kernel), 1.0)

    def test_exp_cosine_positive(self, rng):
        attrs = _random_bow(rng)
        kernel = kernel_matrix(attrs, "exp_cosine")
        assert (kernel > 0).all()

    def test_exp_cosine_delta_scales(self, rng):
        attrs = _random_bow(rng)
        k1 = kernel_matrix(attrs, "exp_cosine", delta=1.0)
        k2 = kernel_matrix(attrs, "exp_cosine", delta=2.0)
        assert np.allclose(k1, np.exp(attrs @ attrs.T))
        assert np.allclose(k2, np.exp((attrs @ attrs.T) / 2.0))

    def test_jaccard_in_unit_interval(self, rng):
        attrs = _random_bow(rng)
        kernel = kernel_matrix(attrs, "jaccard")
        assert (kernel >= 0).all() and (kernel <= 1).all()
        assert np.allclose(np.diag(kernel), 1.0)

    def test_pearson_clipped_non_negative(self, rng):
        attrs = rng.normal(size=(15, 6))
        kernel = kernel_matrix(attrs, "pearson")
        assert (kernel >= 0).all()

    def test_unknown_metric_raises(self, rng):
        with pytest.raises(ValueError, match="unknown metric"):
            kernel_matrix(_random_bow(rng), "hamming")

    def test_metric_names_exposed(self):
        assert set(METRIC_NAMES) == {"cosine", "exp_cosine", "jaccard", "pearson"}


class TestNormalization:
    def test_symmetric(self, rng):
        snas = snas_matrix(_random_bow(rng), "cosine")
        assert np.allclose(snas, snas.T)

    def test_range(self, rng):
        for metric in ("cosine", "exp_cosine"):
            snas = snas_matrix(_random_bow(rng), metric)
            assert (snas >= 0).all()
            assert (snas <= 1.0 + 1e-9).all()

    def test_eq1_definition(self, rng):
        """Direct check of Eq. (1) against the matrix implementation."""
        attrs = _random_bow(rng, n=12)
        kernel = kernel_matrix(attrs, "exp_cosine")
        snas = snas_from_kernel(kernel)
        i, j = 3, 7
        expected = kernel[i, j] / np.sqrt(kernel[i].sum()) / np.sqrt(kernel[j].sum())
        assert np.isclose(snas[i, j], expected)

    def test_identical_attrs_highest_similarity(self):
        attrs = normalize_rows(
            np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        )
        snas = snas_matrix(attrs, "cosine")
        assert snas[0, 1] > snas[0, 2]

    def test_nonpositive_rowsum_raises(self):
        kernel = np.array([[1.0, -2.0], [-2.0, 1.0]])
        with pytest.raises(ValueError, match="non-positive row sum"):
            snas_from_kernel(kernel)

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        n=st.integers(min_value=2, max_value=30),
        d=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_symmetric_bounded(self, seed, n, d):
        """SNAS of non-negative attributes is symmetric and in [0, 1]."""
        rng = np.random.default_rng(seed)
        attrs = _random_bow(rng, n=n, d=d)
        for metric in ("cosine", "exp_cosine"):
            snas = snas_matrix(attrs, metric)
            assert np.allclose(snas, snas.T)
            assert (snas >= -1e-12).all()
            assert (snas <= 1.0 + 1e-9).all()
