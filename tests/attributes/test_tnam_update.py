"""Tests for incremental TNAM maintenance (:meth:`TNAM.update_rows`).

Exactness contract: the maintained factorization's Gram matrix ``Z Zᵀ``
(the only quantity LACA ever reads — Step 2 consumes ``z(i)·z(j)``
inner products exclusively) matches a from-scratch :func:`build_tnam`
on the updated attributes within 1e-10 whenever the touched rows stay in
the retained basis span, and the fallback paths rebuild *bitwise*
identically to a fresh build.
"""

import numpy as np
import pytest

from repro.attributes.tnam import build_tnam
from repro.graphs import GraphDelta


def _unit_rows(rng, n, d):
    rows = np.abs(rng.normal(size=(n, d))) + 0.05
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


@pytest.fixture()
def attrs(rng):
    return _unit_rows(rng, 120, 24)


def _updated(rng, attrs, rows, appended=0):
    """New attribute matrix with ``rows`` rewritten and rows appended.

    Untouched rows are carried over bit-for-bit — the graph layer's
    semantics (it normalizes only touched rows, exactly once).
    """
    d = attrs.shape[1]
    out = np.vstack([attrs, _unit_rows(rng, appended, d)]) if appended else attrs.copy()
    if len(rows):
        out[np.asarray(rows)] = _unit_rows(rng, len(rows), d)
    return out


class TestCosineSvdPath:
    def test_row_update_matches_rebuild_gram(self, rng, attrs):
        """Acceptance (b): incremental update == rebuild within 1e-10."""
        tnam = build_tnam(attrs, k=32, metric="cosine")
        new_attrs = _updated(rng, attrs, [3, 50, 77])
        updated = tnam.update_rows(new_attrs, [3, 50, 77])
        rebuilt = build_tnam(new_attrs, k=32, metric="cosine")
        np.testing.assert_allclose(
            updated.dense_snas(), rebuilt.dense_snas(), atol=1e-10
        )

    def test_appended_rows_match_rebuild_gram(self, rng, attrs):
        new_attrs = _updated(rng, attrs, [], appended=3)
        tnam = build_tnam(attrs, k=32, metric="cosine")
        updated = tnam.update_rows(new_attrs, [120, 121, 122])
        rebuilt = build_tnam(new_attrs, k=32, metric="cosine")
        assert updated.n == 123
        np.testing.assert_allclose(
            updated.dense_snas(), rebuilt.dense_snas(), atol=1e-10
        )

    def test_no_svd_rerun_on_in_span_update(self, rng, attrs, monkeypatch):
        """The incremental path must never pay another factorization."""
        import repro.attributes.tnam as tnam_mod

        tnam = build_tnam(attrs, k=32, metric="cosine")

        def boom(*_a, **_k):  # pragma: no cover - fails the test if hit
            raise AssertionError("update_rows re-ran the SVD")

        monkeypatch.setattr(tnam_mod, "truncated_svd", boom)
        new_attrs = _updated(rng, attrs, [7])
        tnam.update_rows(new_attrs, [7])

    def test_out_of_span_row_triggers_exact_rebuild(self, rng):
        """A row the truncated basis cannot express forces a rebuild,
        and the rebuild is bitwise identical to a fresh build."""
        attrs = _unit_rows(rng, 120, 24)
        tnam = build_tnam(attrs, k=8, metric="cosine")
        assert tnam.basis.shape == (8, 24)
        new_attrs = attrs.copy()
        new_attrs[5] = np.eye(24)[23]  # almost surely escapes an 8-dim span
        updated = tnam.update_rows(new_attrs, [5])
        rebuilt = build_tnam(new_attrs, k=8, metric="cosine")
        np.testing.assert_array_equal(updated.z, rebuilt.z)

    def test_laca_clusters_identical_after_update(self, rng, small_sbm):
        """Acceptance (b): LACA clusters identically on the maintained
        and the rebuilt TNAM."""
        from repro.core.config import LacaConfig
        from repro.core.laca import laca_scores

        config = LacaConfig(k=32)
        attrs = small_sbm.attributes
        tnam = build_tnam(attrs, k=32, metric="cosine")
        new_attrs = attrs.copy()
        new_attrs[[10, 40]] = _unit_rows(rng, 2, attrs.shape[1])
        graph = type(small_sbm)(
            adjacency=small_sbm.adjacency,
            attributes=new_attrs,
            communities=small_sbm.communities,
            name=small_sbm.name,
        )
        updated = tnam.update_rows(graph.attributes, [10, 40])
        rebuilt = build_tnam(graph.attributes, k=32, metric="cosine")
        for seed in (0, 10, 41, 77):
            a = laca_scores(graph, seed, config=config, tnam=updated)
            b = laca_scores(graph, seed, config=config, tnam=rebuilt)
            np.testing.assert_array_equal(a.cluster(25), b.cluster(25))


class TestOtherPaths:
    def test_without_svd_is_exact(self, rng, attrs):
        tnam = build_tnam(attrs, k=32, metric="cosine", use_svd=False)
        assert tnam.basis is None
        new_attrs = _updated(rng, attrs, [2, 9], appended=1)
        updated = tnam.update_rows(new_attrs, [2, 9, 120], use_svd=False)
        rebuilt = build_tnam(new_attrs, k=32, metric="cosine", use_svd=False)
        np.testing.assert_array_equal(updated.z, rebuilt.z)

    def test_exp_cosine_rebuilds_bitwise(self, rng, attrs):
        """ORF features are not rotation-stable, so exp-cosine updates
        fall back to a full rebuild — deterministic, hence bitwise."""
        tnam = build_tnam(attrs, k=16, metric="exp_cosine")
        new_attrs = _updated(rng, attrs, [4])
        updated = tnam.update_rows(new_attrs, [4])
        rebuilt = build_tnam(new_attrs, k=16, metric="exp_cosine")
        np.testing.assert_array_equal(updated.z, rebuilt.z)

    def test_legacy_state_without_y_rebuilds(self, rng, attrs):
        from repro.attributes.tnam import TNAM

        fresh = build_tnam(attrs, k=16, metric="cosine")
        legacy = TNAM(z=fresh.z, metric="cosine", k=16)  # no y / basis
        new_attrs = _updated(rng, attrs, [0])
        updated = legacy.update_rows(new_attrs, [0])
        rebuilt = build_tnam(new_attrs, k=16, metric="cosine")
        np.testing.assert_array_equal(updated.z, rebuilt.z)


class TestUpdateViaDelta:
    def test_structural_delta_is_identity(self, attrs):
        tnam = build_tnam(attrs, k=16, metric="cosine")
        delta = GraphDelta(add_edges=[(0, 50)], remove_edges=[])
        assert tnam.update(delta, attrs) is tnam

    def test_attribute_delta_routes_rows(self, rng, attrs):
        tnam = build_tnam(attrs, k=32, metric="cosine")
        new_attrs = _updated(rng, attrs, [8])
        delta = GraphDelta(set_attributes=([8], new_attrs[[8]]))
        updated = tnam.update(delta, new_attrs)
        rebuilt = build_tnam(new_attrs, k=32, metric="cosine")
        np.testing.assert_allclose(
            updated.dense_snas(), rebuilt.dense_snas(), atol=1e-10
        )


class TestValidation:
    def test_shrinking_attributes_rejected(self, attrs):
        tnam = build_tnam(attrs, k=16, metric="cosine")
        with pytest.raises(ValueError, match="append-only"):
            tnam.update_rows(attrs[:100], [0])

    def test_appended_rows_must_be_listed(self, rng, attrs):
        tnam = build_tnam(attrs, k=16, metric="cosine")
        new_attrs = _updated(rng, attrs, [], appended=2)
        with pytest.raises(ValueError, match="appended"):
            tnam.update_rows(new_attrs, [120])  # forgot row 121

    def test_out_of_range_row_rejected(self, attrs):
        tnam = build_tnam(attrs, k=16, metric="cosine")
        with pytest.raises(ValueError, match="out of range"):
            tnam.update_rows(attrs, [200])

    def test_empty_rows_same_shape_is_identity(self, attrs):
        tnam = build_tnam(attrs, k=16, metric="cosine")
        assert tnam.update_rows(attrs, []) is tnam
