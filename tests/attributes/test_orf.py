"""Tests for orthogonal random features (Theorem V.2)."""

import numpy as np

from repro.graphs.graph import normalize_rows
from repro.attributes.orf import orf_feature_map, orthogonal_random_projection


class TestProjection:
    def test_shape(self, rng):
        projection = orthogonal_random_projection(8, 8, rng)
        assert projection.shape == (8, 8)

    def test_block_columns_orthogonal_directions(self, rng):
        projection = orthogonal_random_projection(6, 6, rng)
        # Columns are χ-scaled rows of an orthogonal matrix: normalized
        # columns must be pairwise orthogonal within the block.
        normalized = projection / np.linalg.norm(projection, axis=0)
        gram = normalized.T @ normalized
        assert np.allclose(gram, np.eye(6), atol=1e-10)

    def test_stacking_beyond_dim(self, rng):
        projection = orthogonal_random_projection(4, 10, rng)
        assert projection.shape == (4, 10)

    def test_row_norm_distribution_matches_gaussian(self, rng):
        """χ(k)-scaled rows should have E[‖row‖²] ≈ k like a Gaussian."""
        dim = 16
        samples = [
            np.sum(orthogonal_random_projection(dim, dim, rng) ** 2) / dim
            for _ in range(50)
        ]
        assert abs(np.mean(samples) - dim) < dim * 0.2


class TestFeatureMap:
    def test_output_width_is_2k(self, rng):
        data = normalize_rows(rng.normal(size=(10, 6)))
        features = orf_feature_map(data, n_features=12, rng=rng)
        assert features.shape == (10, 24)

    def test_unbiased_kernel_estimate(self):
        """E[y(i)·y(j)] = exp(x(i)·x(j)/δ) (Theorem V.2), by averaging."""
        rng = np.random.default_rng(11)
        data = normalize_rows(rng.normal(size=(6, 5)))
        target = np.exp(data @ data.T)
        estimates = np.zeros_like(target)
        n_draws = 400
        for draw in range(n_draws):
            features = orf_feature_map(
                data, n_features=8, rng=np.random.default_rng(1000 + draw)
            )
            estimates += features @ features.T
        estimates /= n_draws
        assert np.allclose(estimates, target, atol=0.15)

    def test_delta_two(self):
        rng = np.random.default_rng(5)
        data = normalize_rows(rng.normal(size=(5, 4)))
        target = np.exp((data @ data.T) / 2.0)
        estimates = np.zeros_like(target)
        for draw in range(300):
            features = orf_feature_map(
                data, n_features=8, delta=2.0, rng=np.random.default_rng(draw)
            )
            estimates += features @ features.T
        estimates /= 300
        assert np.allclose(estimates, target, atol=0.15)

    def test_variance_shrinks_with_more_features(self):
        rng = np.random.default_rng(2)
        data = normalize_rows(rng.normal(size=(4, 6)))
        target = np.exp(data @ data.T)

        def mse(n_features):
            errors = []
            for draw in range(60):
                features = orf_feature_map(
                    data, n_features, rng=np.random.default_rng(draw)
                )
                errors.append(np.mean((features @ features.T - target) ** 2))
            return np.mean(errors)

        assert mse(64) < mse(4)
