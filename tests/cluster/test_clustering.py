"""Tests for the clustering substrate (k-means, spectral, DBSCAN)."""

import numpy as np
import pytest

from repro.cluster.dbscan import NOISE, dbscan, estimate_eps
from repro.cluster.kmeans import kmeans, kmeans_plus_plus
from repro.cluster.spectral import knn_affinity, spectral_clustering


def _three_blobs(rng, per_blob=30, spread=0.1):
    centers = np.array([[0.0, 0.0], [5.0, 0.0], [0.0, 5.0]])
    points = np.concatenate(
        [center + spread * rng.normal(size=(per_blob, 2)) for center in centers]
    )
    labels = np.repeat(np.arange(3), per_blob)
    return points, labels


def _clustering_agrees(predicted, truth) -> bool:
    """Cluster labels match the truth up to a relabeling."""
    for cluster in np.unique(predicted):
        members = truth[predicted == cluster]
        if members.shape[0] and np.unique(members).shape[0] > 1:
            return False
    return True


class TestKMeans:
    def test_recovers_blobs(self, rng):
        points, truth = _three_blobs(rng)
        labels, centers = kmeans(points, 3, rng=rng)
        assert _clustering_agrees(labels, truth)
        assert centers.shape == (3, 2)

    def test_k_equals_one(self, rng):
        points, _ = _three_blobs(rng)
        labels, centers = kmeans(points, 1, rng=rng)
        assert (labels == 0).all()
        assert np.allclose(centers[0], points.mean(axis=0))

    def test_invalid_k(self, rng):
        points, _ = _three_blobs(rng)
        with pytest.raises(ValueError, match="k must be"):
            kmeans(points, 0, rng=rng)
        with pytest.raises(ValueError, match="k must be"):
            kmeans(points, points.shape[0] + 1, rng=rng)

    def test_plus_plus_spreads_centers(self, rng):
        points, _ = _three_blobs(rng)
        centers = kmeans_plus_plus(points, 3, rng)
        distances = np.linalg.norm(centers[:, None] - centers[None, :], axis=2)
        np.fill_diagonal(distances, np.inf)
        assert distances.min() > 1.0  # one center per blob

    def test_deterministic_given_rng(self):
        rng_points = np.random.default_rng(0)
        points, _ = _three_blobs(rng_points)
        a, _ = kmeans(points, 3, rng=np.random.default_rng(1))
        b, _ = kmeans(points, 3, rng=np.random.default_rng(1))
        assert np.array_equal(a, b)


class TestSpectral:
    def test_affinity_symmetric(self, rng):
        points, _ = _three_blobs(rng)
        affinity = knn_affinity(points, n_neighbors=5)
        assert (affinity != affinity.T).nnz == 0

    def test_recovers_blobs(self, rng):
        points, truth = _three_blobs(rng)
        labels = spectral_clustering(points, 3, rng=rng)
        assert _clustering_agrees(labels, truth)


class TestDBSCAN:
    def test_recovers_blobs(self, rng):
        points, truth = _three_blobs(rng)
        labels = dbscan(points, eps=0.5, min_samples=4)
        core = labels != NOISE
        assert core.mean() > 0.9
        assert _clustering_agrees(labels[core], truth[core])

    def test_isolated_points_are_noise(self, rng):
        points, _ = _three_blobs(rng)
        points = np.concatenate([points, [[50.0, 50.0]]])
        labels = dbscan(points, eps=0.5, min_samples=4)
        assert labels[-1] == NOISE

    def test_estimate_eps_positive(self, rng):
        points, _ = _three_blobs(rng)
        assert estimate_eps(points) > 0.0

    def test_auto_eps_runs(self, rng):
        points, _ = _three_blobs(rng)
        labels = dbscan(points, min_samples=4)
        assert labels.shape == (points.shape[0],)
