"""Tests for the paired significance tools."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval.significance import BootstrapResult, paired_bootstrap, sign_test


class TestPairedBootstrap:
    def test_clear_winner_significant(self, rng):
        a = 0.8 + 0.02 * rng.normal(size=50)
        b = 0.5 + 0.02 * rng.normal(size=50)
        result = paired_bootstrap(a, b, rng=rng)
        assert result.mean_difference == pytest.approx(0.3, abs=0.05)
        assert result.significant
        assert result.p_a_better > 0.99

    def test_identical_not_significant(self, rng):
        scores = rng.random(40)
        result = paired_bootstrap(scores, scores, rng=rng)
        assert result.mean_difference == 0.0
        assert not result.significant

    def test_noise_dominated_not_significant(self, rng):
        a = 0.5 + 0.3 * rng.normal(size=10)
        b = a + 0.001 * rng.normal(size=10)
        result = paired_bootstrap(a, b, rng=rng)
        assert not result.significant or abs(result.mean_difference) < 0.01

    def test_ci_contains_mean(self, rng):
        a = rng.random(30)
        b = rng.random(30)
        result = paired_bootstrap(a, b, rng=rng)
        assert result.ci_low <= result.mean_difference <= result.ci_high

    def test_input_validation(self):
        with pytest.raises(ValueError, match="aligned"):
            paired_bootstrap([1.0, 2.0], [1.0])
        with pytest.raises(ValueError, match="two"):
            paired_bootstrap([1.0], [2.0])
        with pytest.raises(ValueError, match="confidence"):
            paired_bootstrap([1.0, 2.0], [0.0, 1.0], confidence=1.5)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_property_ci_ordering(self, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.random(20), rng.random(20)
        result = paired_bootstrap(a, b, n_resamples=500, rng=rng)
        assert result.ci_low <= result.ci_high
        assert 0.0 <= result.p_a_better <= 1.0


class TestSignTest:
    def test_all_ties_is_one(self):
        assert sign_test([0.5, 0.5], [0.5, 0.5]) == 1.0

    def test_unanimous_wins_small_p(self):
        a = np.linspace(0.6, 0.9, 12)
        b = a - 0.1
        assert sign_test(a, b) < 0.001

    def test_balanced_wins_large_p(self):
        a = np.array([1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
        b = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        assert sign_test(a, b) == pytest.approx(1.0, abs=0.4)

    def test_p_value_range(self, rng):
        a, b = rng.random(25), rng.random(25)
        assert 0.0 < sign_test(a, b) <= 1.0

    def test_symmetry(self, rng):
        a, b = rng.random(15), rng.random(15)
        assert sign_test(a, b) == pytest.approx(sign_test(b, a))


class TestOnRealEvaluations:
    def test_laca_vs_nibble_comparison(self, medium_sbm):
        """The machinery composes with the harness output."""
        from repro.eval.harness import evaluate_method, sample_seeds

        seeds = sample_seeds(medium_sbm, 12)
        laca = evaluate_method(medium_sbm, "LACA (C)", seeds)
        nibble = evaluate_method(medium_sbm, "PR-Nibble", seeds)
        result = paired_bootstrap(laca.precisions, nibble.precisions)
        assert isinstance(result, BootstrapResult)
        assert result.n_samples == 12
        # On this noisy-edge SBM LACA's advantage should be real.
        assert result.mean_difference > 0.0
