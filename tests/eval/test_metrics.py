"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.eval.metrics import conductance, f1_score, precision, recall, wcss


class TestPrecisionRecall:
    def test_perfect_overlap(self):
        assert precision([1, 2, 3], [1, 2, 3]) == 1.0
        assert recall([1, 2, 3], [1, 2, 3]) == 1.0

    def test_partial(self):
        assert precision([1, 2, 3, 4], [3, 4, 5, 6]) == 0.5
        assert recall([1, 2], [1, 2, 3, 4]) == 0.5

    def test_disjoint(self):
        assert precision([1], [2]) == 0.0
        assert recall([1], [2]) == 0.0

    def test_empty_cases(self):
        assert precision([], [1, 2]) == 0.0
        assert recall([1, 2], []) == 0.0

    def test_duplicates_collapsed(self):
        assert precision([1, 1, 2], [1, 2]) == 1.0

    def test_f1_harmonic_mean(self):
        p = precision([1, 2], [2, 3])  # 0.5
        r = recall([1, 2], [2, 3])  # 0.5
        assert f1_score([1, 2], [2, 3]) == pytest.approx(2 * p * r / (p + r))

    def test_f1_zero_when_disjoint(self):
        assert f1_score([1], [2]) == 0.0


class TestConductance:
    def test_tiny_graph_triangle(self, tiny_graph):
        """Cluster {0,1,2}: one cut edge; vol = 7 → φ = 1/7."""
        assert conductance(tiny_graph, [0, 1, 2]) == pytest.approx(1.0 / 7.0)

    def test_single_node(self, tiny_graph):
        """{2}: all 3 incident edges cut → φ = 1."""
        assert conductance(tiny_graph, [2]) == pytest.approx(1.0)

    def test_degenerate_clusters(self, tiny_graph):
        assert conductance(tiny_graph, []) == 1.0
        assert conductance(tiny_graph, list(range(6))) == 1.0

    def test_uses_smaller_side_volume(self, tiny_graph):
        """Complement of {0,1,2} has the same cut and volume → equal φ."""
        a = conductance(tiny_graph, [0, 1, 2])
        b = conductance(tiny_graph, [3, 4, 5])
        assert a == pytest.approx(b)

    def test_planted_cluster_lower_than_random(self, small_sbm, rng):
        truth = small_sbm.ground_truth_cluster(0)
        random_set = rng.choice(small_sbm.n, size=truth.shape[0], replace=False)
        assert conductance(small_sbm, truth) < conductance(small_sbm, random_set)


class TestWCSS:
    def test_identical_attributes_zero(self, rng):
        from repro.graphs.graph import AttributedGraph

        attrs = np.tile([1.0, 0.0], (4, 1))
        graph = AttributedGraph.from_edges(
            4, [(0, 1), (1, 2), (2, 3), (3, 0)], attributes=attrs
        )
        assert wcss(graph, [0, 1, 2, 3]) == pytest.approx(0.0)

    def test_coherent_cluster_lower_than_mixed(self, tiny_graph):
        assert wcss(tiny_graph, [0, 1, 2]) < wcss(tiny_graph, [0, 1, 3, 4])

    def test_requires_attributes(self, plain_graph):
        with pytest.raises(ValueError, match="attributes"):
            wcss(plain_graph, [0, 1])

    def test_empty_cluster(self, tiny_graph):
        assert wcss(tiny_graph, []) == 0.0

    def test_range_for_normalized_attrs(self, small_sbm, rng):
        cluster = rng.choice(small_sbm.n, size=20, replace=False)
        value = wcss(small_sbm, cluster)
        assert 0.0 <= value <= 2.0
