"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.baselines.pr_nibble import PRNibble
from repro.eval.harness import (
    MethodEvaluation,
    evaluate_many,
    evaluate_method,
    grid_search,
    sample_seeds,
)


class TestSampleSeeds:
    def test_distinct_and_in_range(self, small_sbm):
        seeds = sample_seeds(small_sbm, 30)
        assert np.unique(seeds).shape[0] == 30
        assert seeds.min() >= 0 and seeds.max() < small_sbm.n

    def test_clamps_to_n(self, tiny_graph):
        assert sample_seeds(tiny_graph, 100).shape[0] == 6

    def test_deterministic_default(self, small_sbm):
        assert np.array_equal(sample_seeds(small_sbm, 5), sample_seeds(small_sbm, 5))


class TestEvaluateMethod:
    def test_by_name(self, small_sbm):
        seeds = sample_seeds(small_sbm, 5)
        evaluation = evaluate_method(small_sbm, "PR-Nibble", seeds)
        assert evaluation.method == "PR-Nibble"
        assert evaluation.dataset == "small-sbm"
        assert len(evaluation.precisions) == 5
        assert 0.0 <= evaluation.mean_precision <= 1.0
        assert evaluation.mean_online_seconds > 0.0

    def test_by_instance(self, small_sbm):
        seeds = sample_seeds(small_sbm, 3)
        evaluation = evaluate_method(small_sbm, PRNibble(), seeds)
        assert len(evaluation.recalls) == 3

    def test_quality_metrics_optional(self, small_sbm):
        seeds = sample_seeds(small_sbm, 3)
        without = evaluate_method(small_sbm, "PR-Nibble", seeds)
        assert without.conductances == []
        with_quality = evaluate_method(
            small_sbm, "PR-Nibble", seeds, compute_quality=True
        )
        assert len(with_quality.conductances) == 3
        assert len(with_quality.wcss_values) == 3

    def test_laca_preprocessing_time_recorded(self, small_sbm):
        seeds = sample_seeds(small_sbm, 2)
        evaluation = evaluate_method(small_sbm, "LACA (C)", seeds)
        assert evaluation.preprocessing_seconds > 0.0

    def test_as_row_schema(self, small_sbm):
        seeds = sample_seeds(small_sbm, 2)
        row = evaluate_method(small_sbm, "PR-Nibble", seeds).as_row()
        assert set(row) == {
            "method", "dataset", "precision", "recall", "conductance",
            "wcss", "online_s", "preprocess_s",
        }

    def test_empty_evaluation_means_zero(self):
        evaluation = MethodEvaluation(method="x", dataset="y")
        assert evaluation.mean_precision == 0.0
        assert evaluation.mean_online_seconds == 0.0


class TestEvaluateMany:
    def test_multiple_methods(self, small_sbm):
        seeds = sample_seeds(small_sbm, 3)
        results = evaluate_many(small_sbm, ["PR-Nibble", "Jaccard"], seeds)
        assert [r.method for r in results] == ["PR-Nibble", "Jaccard"]


class TestGridSearch:
    def test_picks_best_precision(self, small_sbm):
        seeds = sample_seeds(small_sbm, 5)
        params, evaluation = grid_search(
            small_sbm,
            lambda alpha: PRNibble(alpha=alpha),
            {"alpha": [0.1, 0.8]},
            seeds,
        )
        assert params["alpha"] in (0.1, 0.8)
        # The chosen one must be at least as good as the alternative.
        other = 0.8 if params["alpha"] == 0.1 else 0.1
        other_eval = evaluate_method(small_sbm, PRNibble(alpha=other), seeds)
        assert evaluation.mean_precision >= other_eval.mean_precision

    def test_empty_grid_raises(self, small_sbm):
        seeds = sample_seeds(small_sbm, 2)
        with pytest.raises(AssertionError, match="empty"):
            grid_search(small_sbm, PRNibble, {"alpha": []}, seeds)
