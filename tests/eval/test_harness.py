"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.baselines.pr_nibble import PRNibble
from repro.eval.harness import (
    MethodEvaluation,
    evaluate_many,
    evaluate_method,
    grid_search,
    sample_seeds,
)


class TestSampleSeeds:
    def test_distinct_and_in_range(self, small_sbm):
        seeds = sample_seeds(small_sbm, 30)
        assert np.unique(seeds).shape[0] == 30
        assert seeds.min() >= 0 and seeds.max() < small_sbm.n

    def test_clamps_to_n(self, tiny_graph):
        assert sample_seeds(tiny_graph, 100).shape[0] == 6

    def test_deterministic_default(self, small_sbm):
        assert np.array_equal(sample_seeds(small_sbm, 5), sample_seeds(small_sbm, 5))


class TestEvaluateMethod:
    def test_by_name(self, small_sbm):
        seeds = sample_seeds(small_sbm, 5)
        evaluation = evaluate_method(small_sbm, "PR-Nibble", seeds)
        assert evaluation.method == "PR-Nibble"
        assert evaluation.dataset == "small-sbm"
        assert len(evaluation.precisions) == 5
        assert 0.0 <= evaluation.mean_precision <= 1.0
        assert evaluation.mean_online_seconds > 0.0

    def test_by_instance(self, small_sbm):
        seeds = sample_seeds(small_sbm, 3)
        evaluation = evaluate_method(small_sbm, PRNibble(), seeds)
        assert len(evaluation.recalls) == 3

    def test_quality_metrics_optional(self, small_sbm):
        seeds = sample_seeds(small_sbm, 3)
        without = evaluate_method(small_sbm, "PR-Nibble", seeds)
        assert without.conductances == []
        with_quality = evaluate_method(
            small_sbm, "PR-Nibble", seeds, compute_quality=True
        )
        assert len(with_quality.conductances) == 3
        assert len(with_quality.wcss_values) == 3

    def test_laca_preprocessing_time_recorded(self, small_sbm):
        seeds = sample_seeds(small_sbm, 2)
        evaluation = evaluate_method(small_sbm, "LACA (C)", seeds)
        assert evaluation.preprocessing_seconds > 0.0

    def test_as_row_schema(self, small_sbm):
        seeds = sample_seeds(small_sbm, 2)
        row = evaluate_method(small_sbm, "PR-Nibble", seeds).as_row()
        assert set(row) == {
            "method", "dataset", "precision", "recall", "conductance",
            "wcss", "online_s", "p50_online_s", "p95_online_s",
            "preprocess_s", "throughput_seeds_per_s",
        }

    def test_empty_evaluation_means_zero(self):
        evaluation = MethodEvaluation(method="x", dataset="y")
        assert evaluation.mean_precision == 0.0
        assert evaluation.mean_online_seconds == 0.0
        assert evaluation.throughput_seeds_per_s == 0.0
        assert evaluation.p50_online_seconds == 0.0
        assert evaluation.p95_online_seconds == 0.0

    def test_latency_percentiles(self):
        evaluation = MethodEvaluation(
            method="x", dataset="y", online_seconds=[0.1, 0.2, 0.3]
        )
        assert evaluation.p50_online_seconds == pytest.approx(0.2)
        assert evaluation.p95_online_seconds == pytest.approx(0.29)
        row = evaluation.as_row()
        assert row["p50_online_s"] == pytest.approx(0.2)
        assert row["p95_online_s"] == pytest.approx(0.29)


class TestThroughput:
    def test_throughput_is_inverse_mean_online(self):
        evaluation = MethodEvaluation(
            method="x", dataset="y", online_seconds=[0.5, 0.25, 0.25]
        )
        assert evaluation.total_online_seconds == 1.0
        assert evaluation.throughput_seeds_per_s == pytest.approx(3.0)

    def test_throughput_in_row(self, small_sbm):
        seeds = sample_seeds(small_sbm, 3)
        row = evaluate_method(small_sbm, "PR-Nibble", seeds).as_row()
        assert row["throughput_seeds_per_s"] > 0.0


class TestBatchedEvaluation:
    def test_batched_laca_matches_sequential_metrics(self, small_sbm):
        seeds = sample_seeds(small_sbm, 8)
        from repro.baselines.registry import _LacaAdapter

        method = _LacaAdapter(metric="cosine", diffusion="greedy")
        sequential = evaluate_method(small_sbm, method, seeds)
        batched = evaluate_method(small_sbm, method, seeds, batch_size=4)
        assert batched.precisions == sequential.precisions
        assert batched.recalls == sequential.recalls
        assert len(batched.online_seconds) == len(seeds)
        assert batched.throughput_seeds_per_s > 0.0

    def test_batched_works_for_loop_methods(self, small_sbm):
        """Methods without a native batch path use the default loop."""
        seeds = sample_seeds(small_sbm, 4)
        sequential = evaluate_method(small_sbm, "PR-Nibble", seeds)
        batched = evaluate_method(small_sbm, "PR-Nibble", seeds, batch_size=2)
        assert batched.precisions == sequential.precisions

    def test_batch_size_one_is_sequential(self, small_sbm):
        seeds = sample_seeds(small_sbm, 3)
        evaluation = evaluate_method(small_sbm, "PR-Nibble", seeds, batch_size=1)
        assert len(evaluation.precisions) == 3

    def test_invalid_batch_size(self, small_sbm):
        seeds = sample_seeds(small_sbm, 2)
        with pytest.raises(ValueError, match="batch_size"):
            evaluate_method(small_sbm, "PR-Nibble", seeds, batch_size=0)

    def test_batched_quality_metrics(self, small_sbm):
        seeds = sample_seeds(small_sbm, 4)
        evaluation = evaluate_method(
            small_sbm, "LACA (C)", seeds, compute_quality=True, batch_size=2
        )
        assert len(evaluation.conductances) == 4
        assert len(evaluation.wcss_values) == 4


class TestEvaluateMany:
    def test_multiple_methods(self, small_sbm):
        seeds = sample_seeds(small_sbm, 3)
        results = evaluate_many(small_sbm, ["PR-Nibble", "Jaccard"], seeds)
        assert [r.method for r in results] == ["PR-Nibble", "Jaccard"]


class TestGridSearch:
    def test_picks_best_precision(self, small_sbm):
        seeds = sample_seeds(small_sbm, 5)
        params, evaluation = grid_search(
            small_sbm,
            lambda alpha: PRNibble(alpha=alpha),
            {"alpha": [0.1, 0.8]},
            seeds,
        )
        assert params["alpha"] in (0.1, 0.8)
        # The chosen one must be at least as good as the alternative.
        other = 0.8 if params["alpha"] == 0.1 else 0.1
        other_eval = evaluate_method(small_sbm, PRNibble(alpha=other), seeds)
        assert evaluation.mean_precision >= other_eval.mean_precision

    def test_empty_grid_raises(self, small_sbm):
        seeds = sample_seeds(small_sbm, 2)
        with pytest.raises(AssertionError, match="empty"):
            grid_search(small_sbm, PRNibble, {"alpha": []}, seeds)
