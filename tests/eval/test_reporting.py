"""Tests for table/series formatting and CSV export."""

import csv

from repro.eval.reporting import format_series, format_table, write_csv


class TestFormatTable:
    def test_basic_render(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "22" in text and "yy" in text

    def test_title_first(self):
        text = format_table([{"a": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_column_subset_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 9}], columns=["a", "b"])
        assert "9" in text


class TestFormatSeries:
    def test_renders_rows_per_x(self):
        text = format_series("x", [1, 2], {"s1": [0.5, 0.25], "s2": [1.0, 2.0]})
        assert "0.5" in text and "2.0" in text
        assert len(text.splitlines()) == 4  # header + rule + 2 rows

    def test_rounding(self):
        text = format_series("x", [1], {"s": [0.123456789]}, precision=3)
        assert "0.123" in text
        assert "0.1234" not in text


class TestWriteCSV:
    def test_round_trip(self, tmp_path):
        rows = [{"m": "a", "v": 1.5}, {"m": "b", "v": 2.5}]
        path = write_csv(rows, tmp_path / "out.csv")
        with open(path) as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded[0]["m"] == "a"
        assert float(loaded[1]["v"]) == 2.5

    def test_empty_rows(self, tmp_path):
        path = write_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""

    def test_creates_directories(self, tmp_path):
        path = write_csv([{"a": 1}], tmp_path / "x" / "y" / "z.csv")
        assert path.exists()
