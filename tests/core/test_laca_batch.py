"""Tests for the batched LACA path: laca_scores_batch and the pipeline.

The batched path must be an *equivalent reformulation*, not an
approximation: per-seed scores match the sequential ``laca_scores`` to
float-accumulation noise and the extracted clusters match exactly,
including the edge cases (B=1, duplicate seeds, zero-φ′ columns,
non-attributed graphs) and across every registered synthetic dataset.
"""

import numpy as np
import pytest

from repro.attributes.tnam import TNAM
from repro.core.config import LacaConfig
from repro.core.laca import laca_scores, laca_scores_batch
from repro.core.pipeline import LACA
from repro.graphs.datasets import dataset_names, load_dataset

#: Step 2's batched mat-mats accumulate in a different (BLAS) order than
#: the sequential support-sliced products, so scores carry O(1e-16)
#: noise; everything downstream of identical diffusion schedules agrees
#: to this tolerance.
ATOL = 1e-12

ENGINES = ["greedy", "nongreedy", "adaptive", "push"]


def _config(engine="greedy", **overrides):
    overrides.setdefault("k", 8)
    return LacaConfig(metric="cosine", diffusion=engine, **overrides)


def _fit(graph, config):
    return LACA(config).fit(graph)


class TestScoresParity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_columns_match_sequential(self, small_sbm, engine):
        config = _config(engine)
        model = _fit(small_sbm, config)
        seeds = [0, 5, 33, 60]
        batch = laca_scores_batch(small_sbm, seeds, config=config, tnam=model.tnam)
        for b, seed in enumerate(seeds):
            seq = laca_scores(small_sbm, seed, config=config, tnam=model.tnam)
            np.testing.assert_allclose(
                batch.scores[:, b], seq.scores, rtol=0, atol=ATOL
            )

    def test_single_seed_batch(self, small_sbm):
        config = _config()
        model = _fit(small_sbm, config)
        batch = laca_scores_batch(small_sbm, [7], config=config, tnam=model.tnam)
        seq = laca_scores(small_sbm, 7, config=config, tnam=model.tnam)
        assert batch.n_queries == 1
        np.testing.assert_allclose(batch.scores[:, 0], seq.scores, rtol=0, atol=ATOL)

    def test_duplicate_seeds_identical_columns(self, small_sbm):
        config = _config()
        model = _fit(small_sbm, config)
        batch = laca_scores_batch(
            small_sbm, [9, 9, 41, 9], config=config, tnam=model.tnam
        )
        np.testing.assert_array_equal(batch.scores[:, 0], batch.scores[:, 1])
        np.testing.assert_array_equal(batch.scores[:, 0], batch.scores[:, 3])

    def test_non_attributed_graph(self, plain_graph):
        config = _config()
        seeds = [0, 10, 55]
        batch = laca_scores_batch(plain_graph, seeds, config=config)
        for b, seed in enumerate(seeds):
            seq = laca_scores(plain_graph, seed, config=config)
            np.testing.assert_allclose(
                batch.scores[:, b], seq.scores, rtol=0, atol=ATOL
            )

    def test_without_snas(self, small_sbm):
        config = _config(use_snas=False)
        seeds = [2, 8]
        batch = laca_scores_batch(small_sbm, seeds, config=config)
        for b, seed in enumerate(seeds):
            seq = laca_scores(small_sbm, seed, config=config)
            np.testing.assert_allclose(
                batch.scores[:, b], seq.scores, rtol=0, atol=ATOL
            )


class TestZeroMassColumns:
    """Seeds whose entire RWR support has zero TNAM rows get ψ = 0 and
    hence φ′ = 0 (Eq. 13): their Step 3 must be skipped, yielding
    all-zero scores, without disturbing live columns."""

    @pytest.fixture()
    def two_triangles(self):
        """Two *disconnected* triangles, so seed supports never mix."""
        from repro.graphs.graph import AttributedGraph

        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        attrs = np.eye(6, 3, dtype=float).repeat(2, axis=0)[:6]
        communities = np.array([0, 0, 0, 1, 1, 1])
        return AttributedGraph.from_edges(
            6, edges, attributes=attrs, communities=communities, name="triangles"
        )

    def _tnam(self, n, dead_nodes):
        z = np.ones((n, 2))
        z[dead_nodes] = 0.0
        return TNAM(z=z, metric="cosine", k=2)

    def test_zero_phi_column_among_live_ones(self, two_triangles):
        config = LacaConfig(metric="cosine", k=2, diffusion="greedy", epsilon=1e-3)
        tnam = self._tnam(two_triangles.n, dead_nodes=[0, 1, 2])
        seeds = [0, 4]
        batch = laca_scores_batch(two_triangles, seeds, config=config, tnam=tnam)
        for b, seed in enumerate(seeds):
            seq = laca_scores(two_triangles, seed, config=config, tnam=tnam)
            np.testing.assert_allclose(
                batch.scores[:, b], seq.scores, rtol=0, atol=ATOL
            )
        assert batch.scores[:, 0].sum() == 0.0
        assert batch.scores[:, 1].sum() > 0.0
        assert batch.support_sizes()[0] == 0
        # Diagnostics for the dead column are all-zero but still aligned.
        assert batch.bdd is not None
        assert batch.bdd.column_iterations[0] == 0
        assert batch.bdd.column_iterations[1] > 0

    def test_all_columns_zero_mass(self, two_triangles):
        config = LacaConfig(metric="cosine", k=2, diffusion="greedy", epsilon=1e-3)
        tnam = self._tnam(two_triangles.n, dead_nodes=list(range(6)))
        batch = laca_scores_batch(two_triangles, [0, 3], config=config, tnam=tnam)
        assert batch.bdd is None
        assert batch.scores.sum() == 0.0
        # Clusters still contain the forced seed plus index-order filler.
        cluster = batch.cluster(0, 3)
        assert 0 in cluster


class TestClusterEquality:
    def test_clusters_equal_sequential_cluster_many(self, medium_sbm):
        """Batch clusters == per-seed sequential clusters for every seed."""
        config = _config("greedy", k=16)
        model = _fit(medium_sbm, config)
        rng = np.random.default_rng(3)
        seeds = [int(s) for s in rng.choice(medium_sbm.n, size=12, replace=False)]
        batched = model.cluster_many(seeds)
        sequential = model.cluster_many(seeds, batch_size=1)
        assert set(batched) == set(sequential)
        for seed in seeds:
            np.testing.assert_array_equal(batched[seed], sequential[seed])

    @pytest.mark.parametrize("dataset", dataset_names())
    def test_registered_datasets_identical_clusters(self, dataset):
        """Acceptance bar: batch == sequential on every registered dataset."""
        graph = load_dataset(dataset, scale=0.05)
        config = _config("greedy", k=8)
        model = _fit(graph, config)
        rng = np.random.default_rng(0)
        seeds = [int(s) for s in rng.choice(graph.n, size=4, replace=False)]
        batch = model.scores_batch(seeds)
        for b, seed in enumerate(seeds):
            size = graph.ground_truth_cluster(seed).shape[0]
            np.testing.assert_array_equal(
                batch.cluster(b, size), model.cluster(seed, size)
            )


class TestPipelineBatchAPI:
    def test_scores_batch_requires_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            LACA().scores_batch([0])

    def test_chunked_equals_single_block(self, small_sbm):
        model = _fit(small_sbm, _config("greedy"))
        seeds = [0, 5, 9, 33, 60]
        whole = model.cluster_many(seeds, size=12)
        chunked = model.cluster_many(seeds, size=12, batch_size=2)
        for seed in seeds:
            np.testing.assert_array_equal(whole[seed], chunked[seed])

    def test_invalid_batch_size(self, small_sbm):
        model = _fit(small_sbm, _config("greedy"))
        with pytest.raises(ValueError, match="batch_size"):
            model.cluster_many([0, 1], size=5, batch_size=0)

    def test_out_of_range_seed(self, small_sbm):
        model = _fit(small_sbm, _config("greedy"))
        with pytest.raises(IndexError, match="out of range"):
            model.scores_batch([0, small_sbm.n])

    def test_missing_tnam_rejected(self, small_sbm):
        with pytest.raises(ValueError, match="TNAM"):
            laca_scores_batch(small_sbm, [0], config=_config("greedy"))

    def test_batch_result_diagnostics(self, small_sbm):
        model = _fit(small_sbm, _config("greedy"))
        seeds = [0, 5]
        result = model.scores_batch(seeds)
        assert result.rwr.n_columns == 2
        assert result.bdd is not None
        assert result.psi is not None and result.psi.shape[0] == 2
        assert (result.support_sizes() > 0).all()
        np.testing.assert_array_equal(result.column(1), result.scores[:, 1])
