"""top_k_cluster vs. a brute-force argsort reference (satellite, PR 3).

The partition-based selection (and its new support-restricted fast path)
must reproduce, for every size/tie/seed configuration, the semantics a
straightforward stable argsort would produce: top-``size`` by score,
ties and zeros broken by ascending node index, seed force-inserted by
displacing the lowest-ranked retained node (highest index among the
lowest scorers).
"""

import numpy as np
import pytest

from repro.core.laca import top_k_cluster


def brute_force_reference(scores: np.ndarray, size: int, seed: int) -> np.ndarray:
    """O(n log n) oracle: stable sort by (-score, index), then force-seed."""
    n = scores.shape[0]
    size = min(size, n)
    if size == n:
        return np.arange(n)
    order = sorted(range(n), key=lambda i: (-scores[i], i))
    retained = order[:size]
    if seed not in retained:
        retained = [seed] + retained[:-1]
    return np.sort(np.array(retained, dtype=np.int64))


def _supports(scores):
    """The exact support plus legal sorted supersets."""
    exact = np.flatnonzero(scores)
    yield None
    yield exact
    n = scores.shape[0]
    padded = np.unique(np.concatenate([exact, [0, n - 1]]))
    yield padded


class TestPropertySweep:
    @pytest.mark.parametrize("n", [1, 2, 7, 40, 173])
    def test_random_scores_all_sizes(self, n, rng):
        scores = rng.random(n) * (rng.random(n) < 0.6)
        for size in {1, 2, n // 2 or 1, n - 1 or 1, n, n + 5}:
            for seed in {0, n // 2, n - 1}:
                expected = brute_force_reference(scores, size, seed)
                for support in _supports(scores):
                    got = top_k_cluster(scores, size, seed, support=support)
                    np.testing.assert_array_equal(
                        got, expected, err_msg=f"n={n} size={size} seed={seed}"
                    )

    def test_heavy_ties(self, rng):
        """Quantized scores force large tie groups at the boundary."""
        n = 120
        scores = np.round(rng.random(n) * 4) / 4.0
        for size in (3, 17, 60, 119):
            for seed in (0, 55, 119):
                expected = brute_force_reference(scores, size, seed)
                for support in _supports(scores):
                    got = top_k_cluster(scores, size, seed, support=support)
                    np.testing.assert_array_equal(got, expected)

    def test_forced_seed_displacement(self):
        """A zero-score seed displaces the highest-index lowest scorer."""
        scores = np.array([0.0, 5.0, 3.0, 3.0, 1.0, 0.0])
        cluster = top_k_cluster(scores, 3, seed=5)
        # top-3 without the seed would be {1, 2, 3}; node 3 (the
        # highest-index boundary tie) is displaced.
        np.testing.assert_array_equal(cluster, np.array([1, 2, 5]))
        np.testing.assert_array_equal(
            cluster, brute_force_reference(scores, 3, 5)
        )

    def test_all_zero_scores(self):
        scores = np.zeros(9)
        np.testing.assert_array_equal(
            top_k_cluster(scores, 4, seed=7),
            brute_force_reference(scores, 4, 7),
        )

    def test_support_path_matches_dense_path(self, rng):
        """The O(support) fast path and the dense path agree bitwise."""
        n = 500
        scores = rng.random(n) * (rng.random(n) < 0.1)
        support = np.flatnonzero(scores)
        assume_sizes = [s for s in (1, 3, support.size) if s >= 1]
        for size in assume_sizes:
            for seed in (0, int(support[0]) if support.size else 0):
                dense = top_k_cluster(scores, size, seed)
                fast = top_k_cluster(scores, size, seed, support=support)
                np.testing.assert_array_equal(dense, fast)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            top_k_cluster(np.ones(4), 0, 0)
