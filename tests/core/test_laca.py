"""Tests for the LACA algorithm (Algo 4) and cluster extraction."""

import numpy as np
import pytest

from repro.attributes.tnam import build_tnam
from repro.core.bdd import exact_bdd
from repro.core.config import LacaConfig
from repro.core.laca import extract_cluster, laca_scores, top_k_cluster


class TestTopKCluster:
    def test_basic_ranking(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        cluster = top_k_cluster(scores, 2, seed=1)
        assert set(cluster) == {1, 3}

    def test_seed_forced_in(self):
        scores = np.array([0.9, 0.0, 0.8, 0.7])
        cluster = top_k_cluster(scores, 2, seed=1)
        assert 1 in cluster

    def test_deterministic_tie_break(self):
        scores = np.zeros(5)
        cluster = top_k_cluster(scores, 3, seed=0)
        assert list(cluster) == [0, 1, 2]

    def test_size_clamped_to_n(self):
        scores = np.array([1.0, 0.5])
        assert top_k_cluster(scores, 10, seed=0).shape[0] == 2

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="positive"):
            top_k_cluster(np.ones(3), 0, seed=0)

    def test_output_sorted(self):
        scores = np.array([0.2, 0.9, 0.1, 0.8, 0.5])
        cluster = top_k_cluster(scores, 3, seed=1)
        assert list(cluster) == sorted(cluster)


class TestForcedSeedInsertion:
    """Regression: force-inserting the seed must displace exactly the
    lowest-scoring retained node, with deterministic tie handling."""

    def test_displaces_lowest_scoring_retained_node(self):
        scores = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        cluster = top_k_cluster(scores, 3, seed=4)
        # Node 2 (score 3.0, lowest of the retained top-3) is displaced.
        assert list(cluster) == [0, 1, 4]

    def test_displacement_with_boundary_ties(self):
        # Top-4 is [0, 1] plus two of the three zero-tied nodes {2, 3, 4}
        # (lowest indices win): [0, 1, 2, 3].  Forcing seed 4 displaces
        # node 3, the highest-index member of the included tie group.
        scores = np.array([3.0, 2.0, 0.0, 0.0, 0.0])
        cluster = top_k_cluster(scores, 4, seed=4)
        assert list(cluster) == [0, 1, 2, 4]

    def test_all_tied_displacement(self):
        scores = np.ones(4)
        cluster = top_k_cluster(scores, 2, seed=3)
        # Retained ties [0, 1]; node 1 (higher index) is displaced.
        assert list(cluster) == [0, 3]

    def test_seed_tied_with_boundary_is_not_duplicated(self):
        scores = np.array([2.0, 1.0, 1.0])
        cluster = top_k_cluster(scores, 2, seed=2)
        assert list(cluster) == [0, 2]
        assert np.unique(cluster).shape[0] == cluster.shape[0]

    def test_seed_already_included_changes_nothing(self):
        scores = np.array([5.0, 4.0, 3.0, 2.0])
        assert list(top_k_cluster(scores, 2, seed=1)) == [0, 1]

    def test_full_size_always_contains_seed(self):
        scores = np.array([0.3, 0.2, 0.1])
        assert list(top_k_cluster(scores, 3, seed=2)) == [0, 1, 2]

    def test_matches_lexsort_reference(self):
        """Pin against the O(n log n) reference on randomized tie-heavy
        inputs (the partition fast path must be semantics-preserving)."""

        def reference(scores, size, seed):
            size = min(size, scores.shape[0])
            order = np.lexsort((np.arange(scores.shape[0]), -scores))
            cluster = order[:size]
            if seed not in cluster:
                cluster = np.concatenate([[seed], cluster[: size - 1]])
            return np.sort(cluster)

        rng = np.random.default_rng(12)
        for _ in range(300):
            n = int(rng.integers(2, 30))
            scores = np.round(rng.random(n), 1)
            scores[rng.random(n) < 0.5] = 0.0
            size = int(rng.integers(1, n + 1))
            seed = int(rng.integers(n))
            np.testing.assert_array_equal(
                top_k_cluster(scores, size, seed), reference(scores, size, seed)
            )


class TestApproximationGuarantee:
    def test_theorem_v4_bound(self, small_sbm):
        """0 ≤ ρ_t − ρ′_t ≤ (1 + Σ d(vi)·max_j s(vi,vj))·ε when the TNAM
        factorization is exact (full rank)."""
        alpha, epsilon = 0.8, 1e-4
        # Full-rank cosine TNAM → Eq. (10) holds exactly.
        tnam = build_tnam(small_sbm.attributes, k=small_sbm.d, metric="cosine")
        config = LacaConfig(
            alpha=alpha, epsilon=epsilon, k=small_sbm.d, metric="cosine"
        )
        from repro.attributes.snas import snas_matrix

        snas = snas_matrix(small_sbm.attributes, "cosine")
        bound = (1.0 + float((small_sbm.degrees * snas.max(axis=1)).sum())) * epsilon
        for seed in [0, 40]:
            exact = exact_bdd(small_sbm, seed, alpha, snas=snas)
            approx = laca_scores(small_sbm, seed, config=config, tnam=tnam).scores
            error = exact - approx
            assert (error >= -1e-6).all(), "ρ′ must underestimate ρ"
            assert error.max() <= bound

    def test_smaller_epsilon_tightens(self, small_sbm):
        tnam = build_tnam(small_sbm.attributes, k=small_sbm.d, metric="cosine")
        exact = exact_bdd(small_sbm, 7, 0.8)

        def max_error(epsilon):
            config = LacaConfig(epsilon=epsilon, k=small_sbm.d)
            approx = laca_scores(small_sbm, 7, config=config, tnam=tnam).scores
            return float(np.abs(exact - approx).max())

        assert max_error(1e-6) < max_error(1e-2)


class TestAlgoFourMechanics:
    def test_returns_diagnostics(self, small_sbm):
        tnam = build_tnam(small_sbm.attributes, k=8)
        result = laca_scores(small_sbm, 0, config=LacaConfig(k=8), tnam=tnam)
        assert result.rwr.iterations > 0
        assert result.bdd.iterations > 0
        assert result.psi is not None
        assert result.psi.shape == (8,)
        assert result.support_size > 0

    def test_psi_matches_eq12(self, small_sbm):
        """ψ = Σ_{i∈supp(π′)} π′_i·z(i) (Eq. 12)."""
        tnam = build_tnam(small_sbm.attributes, k=8)
        result = laca_scores(small_sbm, 3, config=LacaConfig(k=8), tnam=tnam)
        pi = result.rwr.q
        support = np.flatnonzero(pi)
        expected = pi[support] @ tnam.z[support]
        assert np.allclose(result.psi, expected)

    def test_without_snas_needs_no_tnam(self, small_sbm):
        config = LacaConfig(use_snas=False)
        result = laca_scores(small_sbm, 0, config=config)
        assert result.psi is None
        assert result.support_size > 0

    def test_non_attributed_graph(self, plain_graph):
        result = laca_scores(plain_graph, 0, config=LacaConfig())
        assert result.support_size > 0

    def test_missing_tnam_raises(self, small_sbm):
        with pytest.raises(ValueError, match="TNAM"):
            laca_scores(small_sbm, 0, config=LacaConfig())

    def test_bad_seed_raises(self, small_sbm):
        with pytest.raises(IndexError):
            laca_scores(small_sbm, 10_000, config=LacaConfig(use_snas=False))

    @pytest.mark.parametrize("engine", ["adaptive", "greedy", "nongreedy", "push"])
    def test_all_diffusion_engines(self, small_sbm, engine):
        tnam = build_tnam(small_sbm.attributes, k=8)
        config = LacaConfig(k=8, diffusion=engine)
        result = laca_scores(small_sbm, 0, config=config, tnam=tnam)
        assert result.support_size > 0

    def test_extract_cluster_convenience(self, small_sbm):
        tnam = build_tnam(small_sbm.attributes, k=8)
        cluster = extract_cluster(
            small_sbm, 0, 10, config=LacaConfig(k=8), tnam=tnam
        )
        assert cluster.shape == (10,)
        assert 0 in cluster


class TestConfig:
    def test_defaults_valid(self):
        LacaConfig().validate()

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("alpha", 0.0, "alpha"),
            ("alpha", 1.0, "alpha"),
            ("sigma", -0.5, "sigma"),
            ("epsilon", -1e-6, "epsilon"),
            ("k", 0, "k"),
            ("diffusion", "magic", "diffusion"),
        ],
    )
    def test_invalid_fields(self, field, value, match):
        config = LacaConfig().with_updates(**{field: value})
        with pytest.raises(ValueError, match=match):
            config.validate()

    def test_with_updates_is_functional(self):
        base = LacaConfig()
        updated = base.with_updates(alpha=0.5)
        assert base.alpha == 0.8
        assert updated.alpha == 0.5
