"""Tests for :meth:`LACA.refresh`: tracking a store without refitting."""

import numpy as np
import pytest

from repro.core.config import LacaConfig
from repro.core.pipeline import LACA
from repro.graphs import GraphDelta, GraphStore


def _unit_rows(rng, n, d):
    rows = np.abs(rng.normal(size=(n, d))) + 0.05
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def _assert_matches_fresh_fit(model, config, graph, seeds, size=25):
    fresh = LACA(config).fit(graph)
    for seed in seeds:
        np.testing.assert_array_equal(
            model.cluster(seed, size), fresh.cluster(seed, size)
        )


class TestRefresh:
    def test_structural_refresh_is_free_and_exact(self, small_sbm):
        config = LacaConfig(k=16)
        model = LACA(config).fit(small_sbm)
        tnam_before = model.tnam
        store = GraphStore(small_sbm)
        store.apply(GraphDelta(add_edges=[(0, 60), (5, 90)]))
        store.apply(GraphDelta(remove_edges=[(0, 60)]))
        model.refresh(store)
        assert model.graph is store.head
        assert model.tnam is tnam_before  # attributes untouched: no work
        _assert_matches_fresh_fit(model, config, store.head, (0, 5, 60, 90))

    def test_attribute_refresh_updates_tnam(self, rng, small_sbm):
        config = LacaConfig(k=32)
        model = LACA(config).fit(small_sbm)
        store = GraphStore(small_sbm)
        store.apply(GraphDelta(
            set_attributes=([4, 33], _unit_rows(rng, 2, small_sbm.d))
        ))
        model.refresh(store)
        _assert_matches_fresh_fit(model, config, store.head, (0, 4, 33, 80))

    def test_node_append_refresh(self, rng, small_sbm):
        config = LacaConfig(k=32)
        model = LACA(config).fit(small_sbm)
        store = GraphStore(small_sbm)
        n = small_sbm.n
        store.apply(GraphDelta(
            add_nodes=2,
            add_edges=[(n, 0), (n, 3), (n + 1, 7)],
            add_attributes=_unit_rows(rng, 2, small_sbm.d),
            add_communities=[0, 1],
        ))
        model.refresh(store)
        assert model.graph.n == n + 2
        _assert_matches_fresh_fit(model, config, store.head, (0, n, n + 1))

    def test_multi_delta_catchup(self, rng, small_sbm):
        """A model several epochs behind folds all deltas in one refresh."""
        config = LacaConfig(k=32)
        model = LACA(config).fit(small_sbm)
        store = GraphStore(small_sbm)
        store.apply(GraphDelta(add_edges=[(1, 61)]))
        store.apply(GraphDelta(
            set_attributes=([9], _unit_rows(rng, 1, small_sbm.d))
        ))
        store.apply(GraphDelta(remove_edges=[(1, 61)]))
        model.refresh(store)
        assert model.graph.epoch == 3
        _assert_matches_fresh_fit(model, config, store.head, (0, 1, 9, 61))

    def test_history_overflow_falls_back_to_rebuild(self, rng, small_sbm):
        config = LacaConfig(k=16)
        model = LACA(config).fit(small_sbm)
        store = GraphStore(small_sbm, history=1)
        for node in (3, 14, 15):
            store.apply(GraphDelta(
                set_attributes=([node], _unit_rows(rng, 1, small_sbm.d))
            ))
        assert store.attribute_rows_since(0) is None
        model.refresh(store)
        # The rebuild is bitwise identical to a fresh fit.
        fresh = LACA(config).fit(store.head)
        np.testing.assert_array_equal(model.tnam.z, fresh.tnam.z)

    def test_refresh_same_epoch_is_noop(self, small_sbm):
        model = LACA(LacaConfig(k=16)).fit(small_sbm)
        store = GraphStore(small_sbm)
        tnam = model.tnam
        model.refresh(store)
        assert model.tnam is tnam
        assert model.graph is small_sbm

    def test_store_behind_model_rejected(self, small_sbm):
        model = LACA(LacaConfig(k=16)).fit(small_sbm)
        store = GraphStore(small_sbm)
        store.apply(GraphDelta(add_edges=[(0, 60)]))
        model.refresh(store)
        stale_store = GraphStore(small_sbm)  # still at epoch 0
        with pytest.raises(ValueError, match="behind"):
            model.refresh(stale_store)

    def test_refresh_requires_fit(self, small_sbm):
        with pytest.raises(RuntimeError, match="fit"):
            LACA().refresh(GraphStore(small_sbm))

    def test_non_snas_model_refresh(self, plain_graph):
        config = LacaConfig(k=8)
        model = LACA(config).fit(plain_graph)
        store = GraphStore(plain_graph)
        store.apply(GraphDelta(add_edges=[(0, 100)]))
        model.refresh(store)
        assert model.tnam is None
        _assert_matches_fresh_fit(model, config, store.head, (0, 100), size=15)

    def test_exp_cosine_refresh_matches_fresh_fit(self, rng, small_sbm):
        config = LacaConfig(k=16, metric="exp_cosine")
        model = LACA(config).fit(small_sbm)
        store = GraphStore(small_sbm)
        store.apply(GraphDelta(
            set_attributes=([11], _unit_rows(rng, 1, small_sbm.d))
        ))
        model.refresh(store)
        fresh = LACA(config).fit(store.head)
        np.testing.assert_array_equal(model.tnam.z, fresh.tnam.z)


class TestFitStateEpoch:
    def test_fit_state_round_trips_epoch_and_maintenance(self, small_sbm):
        model = LACA(LacaConfig(k=16)).fit(small_sbm)
        store = GraphStore(small_sbm)
        head = store.apply(GraphDelta(add_edges=[(2, 70)]))
        model.refresh(store)
        state = model.fit_state()
        assert int(state["graph_epoch"]) == 1
        reborn = LACA.from_fit_state(state, head)
        assert reborn.graph.epoch == 1
        np.testing.assert_array_equal(reborn.tnam.y, model.tnam.y)
        np.testing.assert_array_equal(reborn.tnam.basis, model.tnam.basis)

    def test_epoch_mismatch_rejected(self, small_sbm):
        model = LACA(LacaConfig(k=16)).fit(small_sbm)
        store = GraphStore(small_sbm)
        head = store.apply(GraphDelta(add_edges=[(2, 70)]))
        model.refresh(store)
        with pytest.raises(ValueError, match="epoch"):
            LACA.from_fit_state(model.fit_state(), small_sbm)  # epoch 0 graph

    def test_reloaded_model_keeps_updating_incrementally(
        self, rng, small_sbm, monkeypatch
    ):
        """Persisted y/basis let a reloaded model absorb attribute deltas
        without refitting."""
        import repro.attributes.tnam as tnam_mod

        config = LacaConfig(k=32)
        model = LACA(config).fit(small_sbm)
        reborn = LACA.from_fit_state(model.fit_state(), small_sbm)
        store = GraphStore(small_sbm)
        store.apply(GraphDelta(
            set_attributes=([6], _unit_rows(rng, 1, small_sbm.d))
        ))

        def boom(*_a, **_k):  # pragma: no cover - fails the test if hit
            raise AssertionError("reloaded model refit instead of updating")

        monkeypatch.setattr(tnam_mod, "truncated_svd", boom)
        reborn.refresh(store)
        monkeypatch.undo()
        _assert_matches_fresh_fit(reborn, config, store.head, (0, 6))
