"""Tests for the high-level LACA pipeline API."""

import numpy as np
import pytest

from repro.core.config import LacaConfig
from repro.core.pipeline import LACA
from repro.eval.metrics import precision


class TestLifecycle:
    def test_fit_then_cluster(self, small_sbm):
        model = LACA(metric="cosine", k=8).fit(small_sbm)
        cluster = model.cluster(seed=0, size=15)
        assert cluster.shape == (15,)
        assert 0 in cluster

    def test_query_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            LACA().scores(0)

    def test_preprocessing_timed(self, small_sbm):
        model = LACA(metric="cosine").fit(small_sbm)
        assert model.preprocessing_seconds >= 0.0
        assert model.tnam is not None

    def test_no_tnam_without_snas(self, small_sbm):
        model = LACA(use_snas=False).fit(small_sbm)
        assert model.tnam is None
        assert model.cluster(0, 10).shape == (10,)

    def test_no_tnam_on_plain_graph(self, plain_graph):
        model = LACA(metric="cosine").fit(plain_graph)
        assert model.tnam is None
        assert model.cluster(0, 10).shape == (10,)

    def test_refit_replaces_state(self, small_sbm, plain_graph):
        model = LACA().fit(small_sbm)
        assert model.tnam is not None
        model.fit(plain_graph)
        assert model.tnam is None
        assert model.graph is plain_graph


class TestConfigPlumbing:
    def test_overrides_applied(self):
        model = LACA(metric="exp_cosine", alpha=0.9, k=16)
        assert model.config.metric == "exp_cosine"
        assert model.config.alpha == 0.9
        assert model.config.k == 16

    def test_explicit_config(self):
        config = LacaConfig(alpha=0.5)
        assert LACA(config).config.alpha == 0.5

    def test_config_plus_overrides(self):
        config = LacaConfig(alpha=0.5)
        model = LACA(config, metric="exp_cosine")
        assert model.config.alpha == 0.5
        assert model.config.metric == "exp_cosine"

    def test_invalid_config_rejected_on_construction(self):
        with pytest.raises(ValueError):
            LACA(alpha=2.0)

    def test_describe(self):
        assert LACA(metric="cosine").describe() == "LACA (C)"
        assert LACA(metric="exp_cosine").describe() == "LACA (E)"
        assert LACA(use_snas=False).describe() == "LACA (w/o SNAS)"


class TestQuality:
    def test_recovers_planted_cluster(self, small_sbm):
        """On an easy SBM, LACA should recover most of the community."""
        model = LACA(metric="cosine", k=16).fit(small_sbm)
        hits = []
        for seed in [0, 25, 60]:
            truth = small_sbm.ground_truth_cluster(seed)
            predicted = model.cluster(seed, truth.shape[0])
            hits.append(precision(predicted, truth))
        assert np.mean(hits) > 0.7

    def test_attributes_help_under_noise(self, medium_sbm):
        """LACA with SNAS beats the attribute-free ablation when edges
        are noisy but attributes carry signal (the paper's core claim)."""
        with_attrs = LACA(metric="cosine", k=16).fit(medium_sbm)
        without = LACA(use_snas=False).fit(medium_sbm)
        rng = np.random.default_rng(1)
        seeds = rng.choice(medium_sbm.n, size=10, replace=False)

        def mean_precision(model):
            values = []
            for seed in seeds:
                truth = medium_sbm.ground_truth_cluster(int(seed))
                predicted = model.cluster(int(seed), truth.shape[0])
                values.append(precision(predicted, truth))
            return np.mean(values)

        assert mean_precision(with_attrs) > mean_precision(without)

    def test_score_vector_matches_scores(self, small_sbm):
        model = LACA(metric="cosine", k=8).fit(small_sbm)
        assert np.array_equal(model.score_vector(3), model.scores(3).scores)


class TestBatchAPI:
    def test_cluster_many_fixed_size(self, small_sbm):
        model = LACA(metric="cosine", k=8).fit(small_sbm)
        clusters = model.cluster_many([0, 5, 9], size=12)
        assert set(clusters) == {0, 5, 9}
        for seed, cluster in clusters.items():
            assert cluster.shape == (12,)
            assert seed in cluster

    def test_cluster_many_ground_truth_sizes(self, small_sbm):
        model = LACA(metric="cosine", k=8).fit(small_sbm)
        clusters = model.cluster_many([0, 5])
        for seed, cluster in clusters.items():
            truth = small_sbm.ground_truth_cluster(seed)
            assert cluster.shape[0] == truth.shape[0]

    def test_cluster_many_matches_single_queries(self, small_sbm):
        model = LACA(metric="cosine", k=8).fit(small_sbm)
        batch = model.cluster_many([2, 4], size=10)
        assert np.array_equal(batch[2], model.cluster(2, 10))
        assert np.array_equal(batch[4], model.cluster(4, 10))


class TestFitState:
    def test_round_trip_in_memory(self, small_sbm):
        model = LACA(metric="cosine", k=8).fit(small_sbm)
        rebuilt = LACA.from_fit_state(model.fit_state(), small_sbm)
        assert rebuilt.config == model.config
        np.testing.assert_array_equal(rebuilt.tnam.z, model.tnam.z)
        np.testing.assert_array_equal(
            rebuilt.cluster(0, 15), model.cluster(0, 15)
        )

    def test_state_is_savez_ready(self, small_sbm):
        state = LACA(metric="cosine", k=8).fit(small_sbm).fit_state()
        for key, value in state.items():
            assert isinstance(value, np.ndarray), key
            assert value.dtype != object, key

    def test_unfitted_model_has_no_state(self):
        with pytest.raises(RuntimeError, match="fit"):
            LACA().fit_state()

    def test_unsupported_version_rejected(self, small_sbm):
        state = LACA(k=8).fit(small_sbm).fit_state()
        state["format_version"] = np.asarray(999)
        with pytest.raises(ValueError, match="version 999"):
            LACA.from_fit_state(state, small_sbm)

    def test_graph_size_mismatch_rejected(self, small_sbm, plain_graph):
        state = LACA(k=8).fit(small_sbm).fit_state()
        with pytest.raises(ValueError, match="n="):
            LACA.from_fit_state(state, plain_graph)

    def test_missing_config_key_uses_default(self, small_sbm):
        # Forward compatibility: states written before a knob existed
        # fall back to that knob's default.
        state = LACA(k=8).fit(small_sbm).fit_state()
        del state["config_sigma"]
        rebuilt = LACA.from_fit_state(state, small_sbm)
        assert rebuilt.config.sigma == LacaConfig().sigma
        assert rebuilt.config.k == 8
