"""Tests for the high-level LACA pipeline API."""

import numpy as np
import pytest

from repro.core.config import LacaConfig
from repro.core.pipeline import LACA
from repro.eval.metrics import precision


class TestLifecycle:
    def test_fit_then_cluster(self, small_sbm):
        model = LACA(metric="cosine", k=8).fit(small_sbm)
        cluster = model.cluster(seed=0, size=15)
        assert cluster.shape == (15,)
        assert 0 in cluster

    def test_query_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            LACA().scores(0)

    def test_preprocessing_timed(self, small_sbm):
        model = LACA(metric="cosine").fit(small_sbm)
        assert model.preprocessing_seconds >= 0.0
        assert model.tnam is not None

    def test_no_tnam_without_snas(self, small_sbm):
        model = LACA(use_snas=False).fit(small_sbm)
        assert model.tnam is None
        assert model.cluster(0, 10).shape == (10,)

    def test_no_tnam_on_plain_graph(self, plain_graph):
        model = LACA(metric="cosine").fit(plain_graph)
        assert model.tnam is None
        assert model.cluster(0, 10).shape == (10,)

    def test_refit_replaces_state(self, small_sbm, plain_graph):
        model = LACA().fit(small_sbm)
        assert model.tnam is not None
        model.fit(plain_graph)
        assert model.tnam is None
        assert model.graph is plain_graph


class TestConfigPlumbing:
    def test_overrides_applied(self):
        model = LACA(metric="exp_cosine", alpha=0.9, k=16)
        assert model.config.metric == "exp_cosine"
        assert model.config.alpha == 0.9
        assert model.config.k == 16

    def test_explicit_config(self):
        config = LacaConfig(alpha=0.5)
        assert LACA(config).config.alpha == 0.5

    def test_config_plus_overrides(self):
        config = LacaConfig(alpha=0.5)
        model = LACA(config, metric="exp_cosine")
        assert model.config.alpha == 0.5
        assert model.config.metric == "exp_cosine"

    def test_invalid_config_rejected_on_construction(self):
        with pytest.raises(ValueError):
            LACA(alpha=2.0)

    def test_describe(self):
        assert LACA(metric="cosine").describe() == "LACA (C)"
        assert LACA(metric="exp_cosine").describe() == "LACA (E)"
        assert LACA(use_snas=False).describe() == "LACA (w/o SNAS)"


class TestQuality:
    def test_recovers_planted_cluster(self, small_sbm):
        """On an easy SBM, LACA should recover most of the community."""
        model = LACA(metric="cosine", k=16).fit(small_sbm)
        hits = []
        for seed in [0, 25, 60]:
            truth = small_sbm.ground_truth_cluster(seed)
            predicted = model.cluster(seed, truth.shape[0])
            hits.append(precision(predicted, truth))
        assert np.mean(hits) > 0.7

    def test_attributes_help_under_noise(self, medium_sbm):
        """LACA with SNAS beats the attribute-free ablation when edges
        are noisy but attributes carry signal (the paper's core claim)."""
        with_attrs = LACA(metric="cosine", k=16).fit(medium_sbm)
        without = LACA(use_snas=False).fit(medium_sbm)
        rng = np.random.default_rng(1)
        seeds = rng.choice(medium_sbm.n, size=10, replace=False)

        def mean_precision(model):
            values = []
            for seed in seeds:
                truth = medium_sbm.ground_truth_cluster(int(seed))
                predicted = model.cluster(int(seed), truth.shape[0])
                values.append(precision(predicted, truth))
            return np.mean(values)

        assert mean_precision(with_attrs) > mean_precision(without)

    def test_score_vector_matches_scores(self, small_sbm):
        model = LACA(metric="cosine", k=8).fit(small_sbm)
        assert np.array_equal(model.score_vector(3), model.scores(3).scores)


class TestBatchAPI:
    def test_cluster_many_fixed_size(self, small_sbm):
        model = LACA(metric="cosine", k=8).fit(small_sbm)
        clusters = model.cluster_many([0, 5, 9], size=12)
        assert set(clusters) == {0, 5, 9}
        for seed, cluster in clusters.items():
            assert cluster.shape == (12,)
            assert seed in cluster

    def test_cluster_many_ground_truth_sizes(self, small_sbm):
        model = LACA(metric="cosine", k=8).fit(small_sbm)
        clusters = model.cluster_many([0, 5])
        for seed, cluster in clusters.items():
            truth = small_sbm.ground_truth_cluster(seed)
            assert cluster.shape[0] == truth.shape[0]

    def test_cluster_many_matches_single_queries(self, small_sbm):
        model = LACA(metric="cosine", k=8).fit(small_sbm)
        batch = model.cluster_many([2, 4], size=10)
        assert np.array_equal(batch[2], model.cluster(2, 10))
        assert np.array_equal(batch[4], model.cluster(4, 10))
