"""Tests for sweep-cut extraction."""

import numpy as np
import pytest

from repro.core.config import LacaConfig
from repro.core.laca import laca_scores
from repro.core.sweep import sweep_cut
from repro.eval.metrics import conductance, precision


class TestSweepMechanics:
    def test_profile_matches_direct_conductance(self, small_sbm, rng):
        scores = rng.random(small_sbm.n) * (rng.random(small_sbm.n) < 0.3)
        if not scores.any():
            scores[0] = 1.0
        result = sweep_cut(small_sbm, scores)
        # Every scanned prefix's profile entry equals the direct metric.
        for position in range(0, result.order.shape[0], 7):
            prefix = result.order[: position + 1]
            assert np.isclose(
                result.profile[position], conductance(small_sbm, prefix)
            )

    def test_best_is_minimum_of_profile(self, small_sbm, rng):
        scores = rng.random(small_sbm.n)
        result = sweep_cut(small_sbm, scores)
        assert np.isclose(result.conductance, result.profile.min())
        assert result.cluster.shape[0] == int(np.argmin(result.profile)) + 1

    def test_empty_support_raises(self, small_sbm):
        with pytest.raises(ValueError, match="empty support"):
            sweep_cut(small_sbm, np.zeros(small_sbm.n))

    def test_wrong_shape_raises(self, small_sbm):
        with pytest.raises(ValueError, match="shape"):
            sweep_cut(small_sbm, np.ones(3))

    def test_max_prefix_limits_scan(self, small_sbm, rng):
        scores = rng.random(small_sbm.n)
        result = sweep_cut(small_sbm, scores, max_prefix=10)
        assert result.profile.shape[0] == 10
        assert result.cluster.shape[0] <= 10

    def test_min_size_respected(self, small_sbm, rng):
        scores = rng.random(small_sbm.n)
        result = sweep_cut(small_sbm, scores, min_size=15)
        assert result.cluster.shape[0] >= 15


class TestSweepQuality:
    def test_recovers_planted_cluster_from_laca_scores(self, small_sbm):
        from repro.attributes.tnam import build_tnam

        tnam = build_tnam(small_sbm.attributes, k=16)
        config = LacaConfig(k=16, epsilon=1e-6)
        seed = 0
        scores = laca_scores(small_sbm, seed, config=config, tnam=tnam).scores
        result = sweep_cut(small_sbm, scores, min_size=5)
        truth = small_sbm.ground_truth_cluster(seed)
        # The sweep cluster should be a decent stand-in for the ground
        # truth without knowing |Ys| in advance.
        assert precision(result.cluster, truth) > 0.5
        # And its conductance should beat a random set of the same size.
        rng = np.random.default_rng(0)
        random_set = rng.choice(
            small_sbm.n, size=result.cluster.shape[0], replace=False
        )
        assert result.conductance < conductance(small_sbm, random_set)

    def test_degree_normalization_changes_order(self, small_sbm):
        scores = small_sbm.degrees.astype(float)  # pure degree ranking
        plain = sweep_cut(small_sbm, scores)
        normalized = sweep_cut(small_sbm, scores, normalize_by_degree=True)
        assert not np.array_equal(plain.order[:10], normalized.order[:10])
