"""Tests for exact BDD (Eq. 5) and its reformulations."""

import numpy as np
import pytest

from repro.attributes.snas import snas_matrix
from repro.core.bdd import (
    ALTERNATIVE_VARIANTS,
    alternative_bdd,
    exact_bdd,
    exact_bdd_via_transform,
)
from repro.diffusion.exact import rwr_matrix


class TestLiteralDefinition:
    def test_matches_triple_sum(self, tiny_graph):
        """Eq. (5) as an explicit triple loop on the tiny graph."""
        alpha = 0.8
        seed = 0
        rwr = rwr_matrix(tiny_graph, alpha)
        snas = snas_matrix(tiny_graph.attributes, "cosine")
        via_matrix = exact_bdd(tiny_graph, seed, alpha)
        n = tiny_graph.n
        for target in range(n):
            literal = sum(
                rwr[seed, i] * snas[i, j] * rwr[target, j]
                for i in range(n)
                for j in range(n)
            )
            assert np.isclose(via_matrix[target], literal)

    def test_transform_equivalence(self, small_sbm):
        """Eq. (8) (degree-transformed) equals Eq. (5) — the paper's
        problem transformation (Section III-A)."""
        for seed in [0, 13, 77]:
            direct = exact_bdd(small_sbm, seed, 0.8)
            transformed = exact_bdd_via_transform(small_sbm, seed, 0.8)
            assert np.allclose(direct, transformed, atol=1e-10)

    def test_exp_metric_transform_equivalence(self, small_sbm):
        direct = exact_bdd(small_sbm, 5, 0.8, metric="exp_cosine")
        transformed = exact_bdd_via_transform(small_sbm, 5, 0.8, metric="exp_cosine")
        assert np.allclose(direct, transformed, atol=1e-10)

    def test_non_negative(self, small_sbm):
        assert (exact_bdd(small_sbm, 3, 0.8) >= 0).all()

    def test_seed_scores_high(self, small_sbm):
        scores = exact_bdd(small_sbm, 21, 0.8)
        assert scores[21] >= np.percentile(scores, 95)


class TestNonAttributed:
    def test_identity_snas_cosimrank_form(self, plain_graph):
        """Without attributes, ρ_t = Σ_i π(s,i)·π(t,i) (CoSimRank-like)."""
        alpha = 0.8
        rwr = rwr_matrix(plain_graph, alpha)
        scores = exact_bdd(plain_graph, 4, alpha)
        expected = rwr @ rwr[4]
        assert np.allclose(scores, expected)


class TestAlternativeVariants:
    def test_all_variants_run(self, tiny_graph):
        for variant in ALTERNATIVE_VARIANTS:
            scores = alternative_bdd(tiny_graph, 0, variant, 0.8)
            assert scores.shape == (tiny_graph.n,)
            assert np.isfinite(scores).all()

    def test_unknown_variant_raises(self, tiny_graph):
        with pytest.raises(ValueError, match="unknown variant"):
            alternative_bdd(tiny_graph, 0, "RS-RS")

    def test_variants_differ_from_bdd(self, small_sbm):
        """The RS-formulations produce genuinely different rankings."""
        bdd = exact_bdd(small_sbm, 0, 0.8)
        variant = alternative_bdd(small_sbm, 0, "RS-RS-RS", 0.8)
        top_bdd = set(np.argsort(-bdd)[:20])
        top_variant = set(np.argsort(-variant)[:20])
        assert top_bdd != top_variant

    def test_shared_matrices_accepted(self, small_sbm):
        rwr = rwr_matrix(small_sbm, 0.8)
        snas = snas_matrix(small_sbm.attributes, "cosine")
        a = alternative_bdd(small_sbm, 2, "R-RS-RS", 0.8, snas=snas, rwr=rwr)
        b = alternative_bdd(small_sbm, 2, "R-RS-RS", 0.8)
        assert np.allclose(a, b)
