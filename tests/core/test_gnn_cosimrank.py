"""Tests for the GNN connection (Section V-C) and the CoSimRank remark."""

import numpy as np
import pytest

from repro.attributes.tnam import build_tnam
from repro.core.bdd import exact_bdd
from repro.core.cosimrank import cosimrank_single_source, identity_bdd
from repro.core.gnn import (
    bdd_from_embeddings,
    denoising_objective,
    smoothed_embeddings,
)


class TestSmoothedEmbeddings:
    def test_alpha_near_zero_returns_features(self, small_sbm, rng):
        features = rng.random((small_sbm.n, 4))
        smoothed = smoothed_embeddings(small_sbm, features, alpha=1e-9, n_hops=3)
        assert np.allclose(smoothed, features, atol=1e-6)

    def test_shape_and_finiteness(self, small_sbm, rng):
        features = rng.random((small_sbm.n, 6))
        smoothed = smoothed_embeddings(small_sbm, features, alpha=0.8)
        assert smoothed.shape == features.shape
        assert np.isfinite(smoothed).all()

    def test_wrong_rows_raise(self, small_sbm):
        with pytest.raises(ValueError, match="rows"):
            smoothed_embeddings(small_sbm, np.ones((3, 2)))

    def test_column_mass_preserved_with_transition(self, small_sbm, rng):
        """Row-stochastic smoothing preserves each column's total mass up
        to the truncated tail."""
        features = rng.random((small_sbm.n, 3))
        alpha = 0.5
        smoothed = smoothed_embeddings(small_sbm, features, alpha=alpha, n_hops=60)
        # Σℓ (1-α)αℓ = 1 − α^{L+1}; P preserves column sums of xᵀ only in
        # expectation over degrees — but total mass Σ_i (P x)_i = Σ x for
        # row vectors; here features columns act as row vectors stacked.
        assert np.isfinite(smoothed).all()

    def test_closed_form_minimizes_denoising_objective(self, small_sbm, rng):
        """Lemma V.6: the Neumann-series solution scores below random
        perturbations of itself on Eq. (20)."""
        features = rng.random((small_sbm.n, 4))
        alpha = 0.6
        smoothed = smoothed_embeddings(
            small_sbm, features, alpha=alpha, n_hops=200, use_symmetric=True
        )
        optimum = denoising_objective(small_sbm, smoothed, features, alpha)
        for scale in (0.01, 0.1):
            perturbed = smoothed + scale * rng.normal(size=smoothed.shape)
            assert denoising_objective(
                small_sbm, perturbed, features, alpha
            ) > optimum


class TestBDDEquivalence:
    def test_bdd_equals_embedding_inner_products(self, small_sbm):
        """Section V-C: ρ_t = h(s)·h(t) when Z factorizes the SNAS
        exactly (full-rank cosine TNAM)."""
        alpha = 0.8
        tnam = build_tnam(small_sbm.attributes, k=small_sbm.d, metric="cosine")
        seed = 11
        via_embeddings = bdd_from_embeddings(
            small_sbm, tnam, seed, alpha=alpha, n_hops=250
        )
        exact = exact_bdd(small_sbm, seed, alpha)
        assert np.allclose(via_embeddings, exact, atol=1e-5)

    def test_rankings_agree_at_low_rank(self, small_sbm):
        """Even with k ≪ d, the embedding view ranks like exact BDD."""
        tnam = build_tnam(small_sbm.attributes, k=8, metric="cosine")
        seed = 3
        via_embeddings = bdd_from_embeddings(small_sbm, tnam, seed, n_hops=150)
        exact = exact_bdd(small_sbm, seed, 0.8)
        top_emb = set(np.argsort(-via_embeddings)[:20])
        top_exact = set(np.argsort(-exact)[:20])
        assert len(top_emb & top_exact) >= 12


class TestCoSimRank:
    def test_identity_bdd_matches_exact_bdd_on_plain_graph(self, plain_graph):
        assert np.allclose(
            identity_bdd(plain_graph, 5, 0.8), exact_bdd(plain_graph, 5, 0.8)
        )

    def test_cosimrank_self_highest(self, plain_graph):
        scores = cosimrank_single_source(plain_graph, 2, decay=0.7, n_steps=8)
        assert scores.argmax() == 2

    def test_cosimrank_correlates_with_identity_bdd(self, plain_graph):
        """Both measure walk-coupling; their top sets should overlap."""
        csr = cosimrank_single_source(plain_graph, 0, decay=0.8, n_steps=10)
        bdd = identity_bdd(plain_graph, 0, 0.8)
        top_csr = set(np.argsort(-csr)[:15])
        top_bdd = set(np.argsort(-bdd)[:15])
        assert len(top_csr & top_bdd) >= 7

    def test_invalid_decay(self, plain_graph):
        with pytest.raises(ValueError, match="decay"):
            cosimrank_single_source(plain_graph, 0, decay=1.5)
