"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import SBMConfig, attributed_sbm, plain_sbm
from repro.graphs.graph import AttributedGraph


@pytest.fixture(scope="session")
def tiny_graph() -> AttributedGraph:
    """Two attribute-coherent triangles joined by one bridge edge.

    Nodes 0-2 share one attribute profile, nodes 3-5 another; the bridge
    (2, 3) is the only inter-community edge.  Small enough to reason about
    by hand in diffusion and metric tests.
    """
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    attrs = np.array(
        [
            [1.0, 0.1, 0.0],
            [0.9, 0.2, 0.0],
            [1.0, 0.0, 0.1],
            [0.0, 0.1, 1.0],
            [0.1, 0.0, 0.9],
            [0.0, 0.2, 1.0],
        ]
    )
    communities = np.array([0, 0, 0, 1, 1, 1])
    return AttributedGraph.from_edges(
        6, edges, attributes=attrs, communities=communities, name="tiny"
    )


@pytest.fixture(scope="session")
def small_sbm() -> AttributedGraph:
    """120-node, 3-community attributed SBM (fast exact-oracle checks)."""
    config = SBMConfig(
        n=120,
        n_communities=3,
        avg_degree=8.0,
        mixing=0.2,
        d=24,
        attribute_noise=0.6,
        topic_overlap=0.2,
    )
    return attributed_sbm(config, seed=42, name="small-sbm")


@pytest.fixture(scope="session")
def medium_sbm() -> AttributedGraph:
    """500-node, 5-community attributed SBM (integration-grade checks)."""
    config = SBMConfig(
        n=500,
        n_communities=5,
        avg_degree=10.0,
        mixing=0.3,
        d=48,
        attribute_noise=1.0,
        topic_overlap=0.3,
        rewire_fraction=0.05,
    )
    return attributed_sbm(config, seed=7, name="medium-sbm")


@pytest.fixture(scope="session")
def plain_graph() -> AttributedGraph:
    """Non-attributed planted-partition graph."""
    return plain_sbm(
        n=200, n_communities=4, avg_degree=8.0, mixing=0.15, seed=3, name="plain"
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
