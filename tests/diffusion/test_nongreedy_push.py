"""Non-greedy and push engine specifics."""

import numpy as np
import pytest

from repro.diffusion.nongreedy import nongreedy_diffuse
from repro.diffusion.push import push_diffuse


def _one_hot(n, index):
    vector = np.zeros(n)
    vector[index] = 1.0
    return vector


class TestNonGreedy:
    def test_geometric_residual_decay(self, small_sbm):
        """‖r‖₁ after t iterations is exactly αᵗ·‖f‖₁ (Eq. 17)."""
        alpha = 0.8
        f = _one_hot(small_sbm.n, 0)
        result = nongreedy_diffuse(
            small_sbm, f, alpha=alpha, epsilon=1e-6, track_history=True
        )
        for iteration, residual_sum in enumerate(result.residual_history, start=1):
            assert np.isclose(residual_sum, alpha**iteration, rtol=1e-9)

    def test_iteration_count_logarithmic(self, small_sbm):
        """Iterations ≈ log(ε·min-deg-normalized mass) / log(α)."""
        alpha = 0.8
        f = _one_hot(small_sbm.n, 0)
        loose = nongreedy_diffuse(small_sbm, f, alpha=alpha, epsilon=1e-2)
        tight = nongreedy_diffuse(small_sbm, f, alpha=alpha, epsilon=1e-6)
        assert loose.iterations < tight.iterations
        assert tight.iterations < 200

    def test_all_steps_counted_nongreedy(self, small_sbm):
        result = nongreedy_diffuse(small_sbm, _one_hot(small_sbm.n, 0), 0.8, 1e-4)
        assert result.nongreedy_steps == result.iterations
        assert result.greedy_steps == 0


class TestPush:
    def test_pushes_counted_as_iterations(self, small_sbm):
        result = push_diffuse(small_sbm, _one_hot(small_sbm.n, 0), 0.8, 1e-4)
        assert result.iterations > 0
        assert result.work > 0

    def test_local_support_for_loose_epsilon(self, medium_sbm):
        """With large ε the push never leaves the seed's neighborhood."""
        result = push_diffuse(medium_sbm, _one_hot(medium_sbm.n, 0), 0.8, 5e-2)
        assert result.support_size < medium_sbm.n / 4

    def test_push_budget_raises(self, medium_sbm):
        with pytest.raises(RuntimeError, match="push"):
            push_diffuse(
                medium_sbm, _one_hot(medium_sbm.n, 0), 0.9, 1e-7, max_pushes=10
            )

    def test_deterministic(self, small_sbm):
        f = _one_hot(small_sbm.n, 12)
        a = push_diffuse(small_sbm, f, 0.8, 1e-5)
        b = push_diffuse(small_sbm, f, 0.8, 1e-5)
        assert np.array_equal(a.q, b.q)
