"""Cross-engine equivalence suite over graphs of varying density.

All diffusion engines — greedy, non-greedy, push, adaptive, and the
block engines — answer the same problem under the same threshold, so on
any input they must (a) terminate with every residual below
``ε·d(v_i)`` (the Eq. 15 stopping rule), and (b) agree with each other
on ``q`` within the Eq. (14) additive bound: each engine's output lies
in ``[exact − ε·d, exact]``, hence any two engines differ by at most
``ε·d(v_t)`` per node.
"""

import numpy as np
import pytest

from repro.diffusion.adaptive import adaptive_diffuse
from repro.diffusion.batch import batch_diffuse
from repro.diffusion.greedy import greedy_diffuse
from repro.diffusion.nongreedy import nongreedy_diffuse
from repro.diffusion.push import push_diffuse
from repro.graphs.generators import SBMConfig, attributed_sbm

ENGINES = {
    "greedy": greedy_diffuse,
    "nongreedy": nongreedy_diffuse,
    "adaptive": lambda g, f, alpha, epsilon: adaptive_diffuse(
        g, f, alpha=alpha, sigma=0.1, epsilon=epsilon
    ),
    "push": push_diffuse,
}

#: Sparse, medium, and dense random graphs (avg degree 4 / 10 / 28).
DENSITIES = [4.0, 10.0, 28.0]
GRAPH_SEEDS = [0, 1]


def _graph(avg_degree, seed):
    config = SBMConfig(n=90, n_communities=3, avg_degree=avg_degree, d=8)
    return attributed_sbm(config, seed=seed, name=f"sbm-deg{avg_degree:g}")


def _run_all(graph, f, alpha, epsilon):
    results = {
        name: engine(graph, f, alpha, epsilon) for name, engine in ENGINES.items()
    }
    # The block engines answer the same query through the batched path.
    for engine in ("greedy", "nongreedy", "adaptive"):
        block = batch_diffuse(
            graph, f[:, None], alpha=alpha, epsilon=epsilon, engine=engine
        )
        results[f"batch-{engine}"] = block.column(0)
    return results


@pytest.mark.parametrize("avg_degree", DENSITIES)
@pytest.mark.parametrize("graph_seed", GRAPH_SEEDS)
class TestCrossEngineEquivalence:
    ALPHA = 0.8
    EPSILON = 1e-4

    def _inputs(self, graph, graph_seed):
        one_hot = np.zeros(graph.n)
        one_hot[(7 * graph_seed + 3) % graph.n] = 1.0
        rng = np.random.default_rng(graph_seed)
        general = rng.random(graph.n) * (rng.random(graph.n) < 0.3)
        return [one_hot, general]

    def test_residual_guarantee_at_termination(self, avg_degree, graph_seed):
        graph = _graph(avg_degree, graph_seed)
        for f in self._inputs(graph, graph_seed):
            for name, result in _run_all(graph, f, self.ALPHA, self.EPSILON).items():
                below = result.residual < self.EPSILON * graph.degrees
                assert below.all(), f"{name} left residual above threshold"

    def test_engines_agree_within_additive_bound(self, avg_degree, graph_seed):
        graph = _graph(avg_degree, graph_seed)
        bound = self.EPSILON * graph.degrees + 1e-9
        for f in self._inputs(graph, graph_seed):
            results = _run_all(graph, f, self.ALPHA, self.EPSILON)
            names = list(results)
            for i, a in enumerate(names):
                for b in names[i + 1 :]:
                    gap = np.abs(results[a].q - results[b].q)
                    assert (gap <= bound).all(), f"{a} vs {b} disagree beyond ε·d"

    def test_mass_conservation_everywhere(self, avg_degree, graph_seed):
        graph = _graph(avg_degree, graph_seed)
        for f in self._inputs(graph, graph_seed):
            for name, result in _run_all(graph, f, self.ALPHA, self.EPSILON).items():
                total = result.q.sum() + result.residual.sum()
                assert np.isclose(total, f.sum(), rtol=1e-9), name


@pytest.mark.parametrize("alpha", [0.5, 0.9])
@pytest.mark.parametrize("epsilon", [1e-3, 1e-5])
def test_agreement_across_parameters(alpha, epsilon):
    """The pairwise bound holds across (α, ε) settings on a dense graph."""
    graph = _graph(20.0, seed=5)
    f = np.zeros(graph.n)
    f[13] = 1.0
    results = _run_all(graph, f, alpha, epsilon)
    bound = epsilon * graph.degrees + 1e-9
    reference = results["push"].q
    for name, result in results.items():
        assert (np.abs(result.q - reference) <= bound).all(), name
