"""Bitwise pinning: frontier engines vs. the pre-frontier reference kernels.

PR 3 rewrote every sequential engine around an explicit frontier with
three scatter kernels (volume-local gather, row-sliced CSC mat-vec, full
mat-vec).  The contract is that this is a pure reorganization: on any
input, every engine's ``q``/``residual`` must equal the retained
reference implementation **bit for bit** (``np.array_equal``, not
allclose), the iteration/step counts exactly, and — for adaptive — the
per-iteration greedy/one-shot *schedule* exactly, because the decision
consumes float accumulations the rewrite must reproduce.

The kernel switch thresholds are monkeypatched across the sweep so every
scatter regime (not just the one the graph size happens to pick) is
exercised against the same oracle.
"""

import numpy as np
import pytest

import repro.diffusion.base as diffusion_base
import repro.diffusion.workspace as workspace_mod
from repro.diffusion import reference as ref
from repro.diffusion.adaptive import adaptive_diffuse
from repro.diffusion.greedy import greedy_diffuse
from repro.diffusion.nongreedy import nongreedy_diffuse
from repro.diffusion.push import push_diffuse
from repro.diffusion.workspace import DiffusionWorkspace
from repro.graphs.generators import SBMConfig, attributed_sbm

ALPHA = 0.8
DENSITIES = [4.0, 28.0]
EPSILONS = [1e-3, 1e-5]

PAIRS = {
    "greedy": (greedy_diffuse, ref.reference_greedy_diffuse),
    "nongreedy": (nongreedy_diffuse, ref.reference_nongreedy_diffuse),
    "push": (push_diffuse, ref.reference_push_diffuse),
}


def _graph(avg_degree, seed=0):
    config = SBMConfig(n=120, n_communities=3, avg_degree=avg_degree, d=8)
    return attributed_sbm(config, seed=seed, name=f"parity-deg{avg_degree:g}")


def _inputs(graph, seed=0):
    one_hot = np.zeros(graph.n)
    one_hot[(7 * seed + 3) % graph.n] = 1.0
    rng = np.random.default_rng(seed)
    sparse = rng.random(graph.n) * (rng.random(graph.n) < 0.3)
    dense = rng.random(graph.n)
    return {"one_hot": one_hot, "sparse": sparse, "dense": dense}


def _assert_bitwise(new, old, label):
    assert np.array_equal(new.q, old.q), f"{label}: q diverged"
    assert np.array_equal(new.residual, old.residual), f"{label}: residual diverged"
    assert new.iterations == old.iterations, f"{label}: iteration count diverged"
    assert new.greedy_steps == old.greedy_steps, f"{label}: greedy steps diverged"
    assert new.nongreedy_steps == old.nongreedy_steps, (
        f"{label}: nongreedy steps diverged"
    )
    assert np.isclose(new.work, old.work, rtol=1e-9), f"{label}: work diverged"


@pytest.mark.parametrize("avg_degree", DENSITIES)
@pytest.mark.parametrize("epsilon", EPSILONS)
class TestBitwiseParity:
    @pytest.mark.parametrize("engine", list(PAIRS))
    def test_engine_matches_reference(self, avg_degree, epsilon, engine):
        graph = _graph(avg_degree)
        new_fn, old_fn = PAIRS[engine]
        for name, f in _inputs(graph).items():
            new = new_fn(graph, f, ALPHA, epsilon)
            old = old_fn(graph, f, ALPHA, epsilon)
            _assert_bitwise(new, old, f"{engine}/{name}")

    @pytest.mark.parametrize("sigma", [0.0, 0.1, 1.0])
    def test_adaptive_matches_reference(self, avg_degree, epsilon, sigma):
        graph = _graph(avg_degree)
        for name, f in _inputs(graph).items():
            new = adaptive_diffuse(graph, f, ALPHA, sigma, epsilon)
            old = ref.reference_adaptive_diffuse(graph, f, ALPHA, sigma, epsilon)
            _assert_bitwise(new, old, f"adaptive/σ={sigma}/{name}")

    def test_workspace_mode_matches_reference(self, avg_degree, epsilon):
        graph = _graph(avg_degree)
        ws = DiffusionWorkspace(graph)
        for name, f in _inputs(graph).items():
            for new_fn, old_fn in PAIRS.values():
                ws.begin()
                new = new_fn(graph, f, ALPHA, epsilon, workspace=ws)
                old = old_fn(graph, f, ALPHA, epsilon)
                _assert_bitwise(new, old, f"ws/{name}")
            ws.begin()
            new = adaptive_diffuse(graph, f, ALPHA, 0.1, epsilon, workspace=ws)
            old = ref.reference_adaptive_diffuse(graph, f, ALPHA, 0.1, epsilon)
            _assert_bitwise(new, old, f"ws/adaptive/{name}")


class TestScatterRegimes:
    """Force each scatter kernel in turn; all must match the oracle."""

    REGIMES = {
        # (SELECTIVE_VOLUME_FRACTION override, _UNIQUE_FRACTION override)
        "always-full": (0.0, 8),
        "always-unique": (1e9, 0),  # unique route: volume * 0 <= n always
        "always-semidense": (1e9, 10**9),  # semidense: volume * huge > n
    }

    @pytest.mark.parametrize("regime", list(REGIMES))
    @pytest.mark.parametrize("engine", ["greedy", "nongreedy", "adaptive"])
    def test_forced_kernel_is_bitwise(self, monkeypatch, regime, engine):
        fraction, unique_fraction = self.REGIMES[regime]
        monkeypatch.setattr(
            diffusion_base, "SELECTIVE_VOLUME_FRACTION", fraction
        )
        monkeypatch.setattr(workspace_mod, "_UNIQUE_FRACTION", unique_fraction)
        graph = _graph(10.0)
        f = _inputs(graph)["sparse"]
        if engine == "adaptive":
            new = adaptive_diffuse(graph, f, ALPHA, 0.1, 1e-4)
            old = ref.reference_adaptive_diffuse(graph, f, ALPHA, 0.1, 1e-4)
        else:
            new_fn, old_fn = PAIRS[engine]
            new = new_fn(graph, f, ALPHA, 1e-4)
            old = old_fn(graph, f, ALPHA, 1e-4)
        _assert_bitwise(new, old, f"{engine}/{regime}")


class TestTouchedDiagnostics:
    def test_touched_covers_q_and_residual_support(self):
        # Large sparse graph + loose threshold: the run stays local, so
        # the frontier tracking survives end to end.
        graph = attributed_sbm(
            SBMConfig(n=2000, n_communities=4, avg_degree=4.0, d=8),
            seed=2,
            name="parity-local",
        )
        f = _inputs(graph)["one_hot"]
        result = greedy_diffuse(graph, f, ALPHA, 1e-2)
        assert result.touched is not None
        written = np.union1d(
            np.flatnonzero(result.q), np.flatnonzero(result.residual)
        )
        assert np.isin(written, result.touched).all()
        # sorted unique
        assert (np.diff(result.touched) > 0).all()

    def test_reference_leaves_touched_unset(self):
        graph = _graph(10.0)
        f = _inputs(graph)["one_hot"]
        assert ref.reference_greedy_diffuse(graph, f, ALPHA, 1e-4).touched is None


class TestErrorBehaviour:
    def test_max_iterations_raise_matches_reference(self, medium_sbm):
        f = np.zeros(medium_sbm.n)
        f[0] = 1.0
        with pytest.raises(RuntimeError, match="did not terminate"):
            greedy_diffuse(medium_sbm, f, alpha=0.9, epsilon=1e-8, max_iterations=2)
        with pytest.raises(RuntimeError, match="did not terminate"):
            adaptive_diffuse(medium_sbm, f, alpha=0.9, epsilon=1e-8, max_iterations=2)

    def test_workspace_graph_mismatch_rejected(self, small_sbm, medium_sbm):
        ws = DiffusionWorkspace(small_sbm)
        f = np.zeros(medium_sbm.n)
        f[0] = 1.0
        with pytest.raises(ValueError, match="workspace was built for"):
            greedy_diffuse(medium_sbm, f, workspace=ws)
