"""Cross-algorithm invariant tests for all four diffusion engines.

Every engine must satisfy, for non-negative input ``f``:

* **Eq. (14)**: ``0 ≤ Σ_i f_i π(vi, vt) − q_t ≤ ε · d(vt)`` for all t.
* **Mass conservation**: ``‖q‖₁ + ‖r‖₁ = ‖f‖₁``.
* **Residual termination**: every final residual is below ``ε · d(vi)``.

These are checked directly against the exact linear-solve oracle, plus
property-based (hypothesis) versions over random graphs and inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.diffusion.adaptive import adaptive_diffuse
from repro.diffusion.exact import exact_diffusion
from repro.diffusion.greedy import greedy_diffuse
from repro.diffusion.nongreedy import nongreedy_diffuse
from repro.diffusion.push import push_diffuse
from repro.graphs.generators import SBMConfig, attributed_sbm

ENGINES = {
    "greedy": greedy_diffuse,
    "nongreedy": nongreedy_diffuse,
    "adaptive": adaptive_diffuse,
    "push": push_diffuse,
}


def _one_hot(n, index):
    vector = np.zeros(n)
    vector[index] = 1.0
    return vector


@pytest.mark.parametrize("engine", list(ENGINES))
class TestEquation14:
    @pytest.mark.parametrize("epsilon", [1e-3, 1e-5])
    @pytest.mark.parametrize("alpha", [0.5, 0.8])
    def test_one_hot_guarantee(self, small_sbm, engine, epsilon, alpha):
        f = _one_hot(small_sbm.n, 17)
        result = ENGINES[engine](small_sbm, f, alpha=alpha, epsilon=epsilon)
        exact = exact_diffusion(small_sbm, f, alpha)
        error = exact - result.q
        assert (error >= -1e-9).all(), "q must underestimate"
        assert (error <= epsilon * small_sbm.degrees + 1e-9).all()

    def test_general_vector_guarantee(self, small_sbm, engine, rng):
        f = rng.random(small_sbm.n) * (rng.random(small_sbm.n) < 0.3)
        epsilon = 1e-4
        result = ENGINES[engine](small_sbm, f, alpha=0.8, epsilon=epsilon)
        exact = exact_diffusion(small_sbm, f, 0.8)
        error = exact - result.q
        assert (error >= -1e-9).all()
        assert (error <= epsilon * small_sbm.degrees + 1e-9).all()


@pytest.mark.parametrize("engine", list(ENGINES))
class TestConservationAndTermination:
    def test_mass_conserved(self, small_sbm, engine, rng):
        f = rng.random(small_sbm.n)
        result = ENGINES[engine](small_sbm, f, alpha=0.8, epsilon=1e-4)
        total = result.q.sum() + result.residual.sum()
        assert np.isclose(total, f.sum(), rtol=1e-9)

    def test_final_residual_below_threshold(self, small_sbm, engine):
        epsilon = 1e-4
        f = _one_hot(small_sbm.n, 3)
        result = ENGINES[engine](small_sbm, f, alpha=0.8, epsilon=epsilon)
        assert (result.residual < epsilon * small_sbm.degrees).all()

    def test_output_non_negative(self, small_sbm, engine, rng):
        f = rng.random(small_sbm.n)
        result = ENGINES[engine](small_sbm, f, alpha=0.7, epsilon=1e-3)
        assert (result.q >= 0).all()
        assert (result.residual >= -1e-12).all()

    def test_zero_input_is_zero_output(self, small_sbm, engine):
        result = ENGINES[engine](small_sbm, np.zeros(small_sbm.n), 0.8, 1e-4)
        assert result.q.sum() == 0.0
        assert result.iterations == 0


@pytest.mark.parametrize("engine", list(ENGINES))
class TestValidation:
    def test_rejects_negative_input(self, small_sbm, engine):
        f = np.zeros(small_sbm.n)
        f[0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            ENGINES[engine](small_sbm, f, alpha=0.8, epsilon=1e-4)

    def test_rejects_bad_alpha(self, small_sbm, engine):
        f = _one_hot(small_sbm.n, 0)
        with pytest.raises(ValueError, match="alpha"):
            ENGINES[engine](small_sbm, f, alpha=1.5, epsilon=1e-4)

    def test_rejects_bad_epsilon(self, small_sbm, engine):
        f = _one_hot(small_sbm.n, 0)
        with pytest.raises(ValueError, match="epsilon"):
            ENGINES[engine](small_sbm, f, alpha=0.8, epsilon=0.0)

    def test_rejects_wrong_shape(self, small_sbm, engine):
        with pytest.raises(ValueError, match="shape"):
            ENGINES[engine](small_sbm, np.ones(3), alpha=0.8, epsilon=1e-4)


@given(
    graph_seed=st.integers(min_value=0, max_value=50),
    node=st.integers(min_value=0, max_value=79),
    alpha=st.sampled_from([0.3, 0.6, 0.8, 0.9]),
    epsilon=st.sampled_from([1e-2, 1e-3, 1e-4]),
    engine=st.sampled_from(list(ENGINES)),
)
@settings(max_examples=40, deadline=None)
def test_property_eq14_over_random_graphs(graph_seed, node, alpha, epsilon, engine):
    """Eq. (14) holds on random SBMs for every engine and setting."""
    config = SBMConfig(n=80, n_communities=3, avg_degree=6.0, d=8)
    graph = attributed_sbm(config, seed=graph_seed)
    f = _one_hot(graph.n, node % graph.n)
    result = ENGINES[engine](graph, f, alpha=alpha, epsilon=epsilon)
    exact = exact_diffusion(graph, f, alpha)
    error = exact - result.q
    assert (error >= -1e-9).all()
    assert (error <= epsilon * graph.degrees + 1e-9).all()
    assert np.isclose(result.q.sum() + result.residual.sum(), 1.0)
