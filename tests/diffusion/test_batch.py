"""Batch-parity tests: every block engine column equals its sequential run.

The block engines are *schedules*, not approximations: column ``b`` of
``batch_*_diffuse(graph, F)`` must replay exactly the iterations that
``*_diffuse(graph, F[:, b])`` would perform, so outputs are compared
bitwise-close (tiny atol, zero rtol) and the per-column iteration
bookkeeping is compared exactly.
"""

import numpy as np
import pytest

from repro.diffusion.adaptive import adaptive_diffuse
from repro.diffusion.base import DiffusionResult
from repro.diffusion.batch import (
    BatchDiffusionResult,
    batch_adaptive_diffuse,
    batch_diffuse,
    batch_greedy_diffuse,
    batch_nongreedy_diffuse,
    validate_batch_inputs,
)
from repro.diffusion.exact import exact_diffusion
from repro.diffusion.greedy import greedy_diffuse
from repro.diffusion.nongreedy import nongreedy_diffuse
from repro.diffusion.push import push_diffuse

ALPHA = 0.8
EPSILON = 1e-5

#: Bitwise-close: identical floating-point schedules up to accumulation
#: noise that is orders of magnitude below the Eq. (14) guarantee.
ATOL = 1e-15

PAIRS = {
    "greedy": (batch_greedy_diffuse, greedy_diffuse),
    "nongreedy": (batch_nongreedy_diffuse, nongreedy_diffuse),
}


def _block(graph, rng, n_cols=6):
    """Mixed block: one-hots, a random sparse column, a zero column, and
    a duplicate of column 0."""
    F = np.zeros((graph.n, n_cols))
    for b, node in enumerate([3, 17, 50, 3][: n_cols - 2]):
        F[node, b] = 1.0
    F[:, n_cols - 2] = rng.random(graph.n) * (rng.random(graph.n) < 0.25)
    # column n_cols-1 stays all-zero
    return F


@pytest.mark.parametrize("engine", list(PAIRS))
class TestColumnParity:
    def test_columns_match_sequential(self, small_sbm, engine, rng):
        batch_fn, seq_fn = PAIRS[engine]
        F = _block(small_sbm, rng)
        result = batch_fn(small_sbm, F, alpha=ALPHA, epsilon=EPSILON)
        for b in range(F.shape[1]):
            seq = seq_fn(small_sbm, F[:, b], alpha=ALPHA, epsilon=EPSILON)
            np.testing.assert_allclose(result.q[:, b], seq.q, rtol=0, atol=ATOL)
            np.testing.assert_allclose(
                result.residual[:, b], seq.residual, rtol=0, atol=ATOL
            )
            assert result.column_iterations[b] == seq.iterations
            assert np.isclose(result.work[b], seq.work)

    def test_single_column_block(self, small_sbm, engine):
        batch_fn, seq_fn = PAIRS[engine]
        f = np.zeros(small_sbm.n)
        f[11] = 1.0
        result = batch_fn(small_sbm, f[:, None], alpha=ALPHA, epsilon=EPSILON)
        seq = seq_fn(small_sbm, f, alpha=ALPHA, epsilon=EPSILON)
        assert result.n_columns == 1
        np.testing.assert_allclose(result.q[:, 0], seq.q, rtol=0, atol=ATOL)
        assert result.column_iterations[0] == seq.iterations

    def test_duplicate_columns_identical(self, small_sbm, engine, rng):
        batch_fn, _ = PAIRS[engine]
        F = _block(small_sbm, rng)
        result = batch_fn(small_sbm, F, alpha=ALPHA, epsilon=EPSILON)
        # columns 0 and 3 carry the same one-hot input
        np.testing.assert_array_equal(result.q[:, 0], result.q[:, 3])
        np.testing.assert_array_equal(result.residual[:, 0], result.residual[:, 3])

    def test_zero_column_stays_zero(self, small_sbm, engine, rng):
        batch_fn, _ = PAIRS[engine]
        F = _block(small_sbm, rng)
        result = batch_fn(small_sbm, F, alpha=ALPHA, epsilon=EPSILON)
        assert result.q[:, -1].sum() == 0.0
        assert result.column_iterations[-1] == 0

    def test_per_column_epsilon(self, small_sbm, engine):
        """A length-B epsilon applies column-wise."""
        batch_fn, seq_fn = PAIRS[engine]
        F = np.zeros((small_sbm.n, 2))
        F[5, 0] = 1.0
        F[5, 1] = 1.0
        epsilons = np.array([1e-3, 1e-6])
        result = batch_fn(small_sbm, F, alpha=ALPHA, epsilon=epsilons)
        for b, eps in enumerate(epsilons):
            seq = seq_fn(small_sbm, F[:, b], alpha=ALPHA, epsilon=float(eps))
            np.testing.assert_allclose(result.q[:, b], seq.q, rtol=0, atol=ATOL)
        # The loose column must converge in strictly fewer iterations.
        assert result.column_iterations[0] < result.column_iterations[1]


class TestAdaptiveParity:
    @pytest.mark.parametrize("sigma", [0.0, 0.1, 1.0])
    def test_columns_match_sequential(self, small_sbm, sigma, rng):
        F = _block(small_sbm, rng)
        result = batch_adaptive_diffuse(
            small_sbm, F, alpha=ALPHA, sigma=sigma, epsilon=EPSILON
        )
        for b in range(F.shape[1]):
            seq = adaptive_diffuse(
                small_sbm, F[:, b], alpha=ALPHA, sigma=sigma, epsilon=EPSILON
            )
            np.testing.assert_allclose(result.q[:, b], seq.q, rtol=0, atol=ATOL)
            assert result.column_iterations[b] == seq.iterations
            assert result.greedy_steps[b] == seq.greedy_steps
            assert result.nongreedy_steps[b] == seq.nongreedy_steps

    def test_rejects_negative_sigma(self, small_sbm):
        with pytest.raises(ValueError, match="sigma"):
            batch_adaptive_diffuse(
                small_sbm, np.ones((small_sbm.n, 2)), sigma=-0.5
            )


class TestGuarantees:
    """Every block column satisfies the sequential engines' invariants."""

    @pytest.mark.parametrize("engine", ["greedy", "nongreedy", "adaptive"])
    def test_eq14_against_exact_oracle(self, small_sbm, engine, rng):
        F = _block(small_sbm, rng)
        result = batch_diffuse(
            small_sbm, F, alpha=ALPHA, epsilon=EPSILON, engine=engine
        )
        for b in range(F.shape[1]):
            exact = exact_diffusion(small_sbm, F[:, b], ALPHA)
            error = exact - result.q[:, b]
            assert (error >= -1e-9).all()
            assert (error <= EPSILON * small_sbm.degrees + 1e-9).all()

    @pytest.mark.parametrize("engine", ["greedy", "nongreedy", "adaptive"])
    def test_mass_conservation_and_termination(self, small_sbm, engine, rng):
        F = _block(small_sbm, rng)
        result = batch_diffuse(
            small_sbm, F, alpha=ALPHA, epsilon=EPSILON, engine=engine
        )
        totals = result.q.sum(axis=0) + result.residual.sum(axis=0)
        np.testing.assert_allclose(totals, F.sum(axis=0), rtol=1e-9)
        thresholds = small_sbm.degrees[:, None] * EPSILON
        assert (result.residual < thresholds).all()
        assert (result.q >= 0.0).all()


class TestDispatcher:
    def test_push_fallback_matches_sequential(self, small_sbm, rng):
        F = _block(small_sbm, rng)
        result = batch_diffuse(
            small_sbm, F, alpha=ALPHA, epsilon=EPSILON, engine="push"
        )
        assert isinstance(result, BatchDiffusionResult)
        for b in range(F.shape[1]):
            seq = push_diffuse(small_sbm, F[:, b], alpha=ALPHA, epsilon=EPSILON)
            np.testing.assert_array_equal(result.q[:, b], seq.q)

    def test_unknown_engine_rejected(self, small_sbm):
        with pytest.raises(ValueError, match="unknown diffusion engine"):
            batch_diffuse(small_sbm, np.ones((small_sbm.n, 1)), engine="magic")

    def test_column_view_roundtrip(self, small_sbm, rng):
        F = _block(small_sbm, rng)
        result = batch_greedy_diffuse(small_sbm, F, alpha=ALPHA, epsilon=EPSILON)
        column = result.column(0)
        assert isinstance(column, DiffusionResult)
        np.testing.assert_array_equal(column.q, result.q[:, 0])
        assert column.iterations == result.column_iterations[0]


class TestValidation:
    def test_empty_block(self, small_sbm):
        result = batch_greedy_diffuse(small_sbm, np.zeros((small_sbm.n, 0)))
        assert result.n_columns == 0
        assert result.iterations == 0

    def test_rejects_wrong_shape(self, small_sbm):
        with pytest.raises(ValueError, match="shape"):
            batch_greedy_diffuse(small_sbm, np.ones(small_sbm.n))
        with pytest.raises(ValueError, match="shape"):
            batch_greedy_diffuse(small_sbm, np.ones((3, 2)))

    def test_rejects_negative_entries(self, small_sbm):
        F = np.zeros((small_sbm.n, 2))
        F[0, 1] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            batch_greedy_diffuse(small_sbm, F)

    def test_rejects_bad_alpha(self, small_sbm):
        with pytest.raises(ValueError, match="alpha"):
            batch_greedy_diffuse(small_sbm, np.ones((small_sbm.n, 1)), alpha=1.5)

    def test_rejects_bad_epsilon(self, small_sbm):
        F = np.ones((small_sbm.n, 2))
        with pytest.raises(ValueError, match="epsilon"):
            batch_greedy_diffuse(small_sbm, F, epsilon=0.0)
        with pytest.raises(ValueError, match="positive"):
            batch_greedy_diffuse(small_sbm, F, epsilon=np.array([1e-5, 0.0]))
        with pytest.raises(ValueError, match="epsilon"):
            batch_greedy_diffuse(small_sbm, F, epsilon=np.array([1e-5, 1e-5, 1e-5]))

    def test_validate_broadcasts_scalar(self, small_sbm):
        F, eps = validate_batch_inputs(
            np.ones((small_sbm.n, 3)), small_sbm.n, 0.8, 1e-4
        )
        np.testing.assert_array_equal(eps, np.full(3, 1e-4))
