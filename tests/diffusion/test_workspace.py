"""DiffusionWorkspace: buffer recycling, reuse parity, allocation behavior.

The workspace's contract is that reuse is *invisible*: any sequence of
queries through one workspace yields bitwise the results of fresh-buffer
runs, because ``begin()`` restores every buffer to its pristine state in
O(touched).  These tests drive mixed engine/input/epsilon sequences
through a single workspace and hold it to that contract, plus the
zero-length-``n``-allocation claim for steady-state local queries.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.config import LacaConfig
from repro.core.laca import laca_scores
from repro.core.pipeline import LACA
from repro.diffusion.adaptive import adaptive_diffuse
from repro.diffusion.greedy import greedy_diffuse
from repro.diffusion.nongreedy import nongreedy_diffuse
from repro.diffusion.push import push_diffuse
from repro.diffusion.workspace import DiffusionWorkspace, sorted_union
from repro.graphs.generators import SBMConfig, attributed_sbm

ENGINES = {
    "greedy": greedy_diffuse,
    "nongreedy": nongreedy_diffuse,
    "adaptive": adaptive_diffuse,
    "push": push_diffuse,
}


@pytest.fixture(scope="module")
def graph():
    return attributed_sbm(
        SBMConfig(n=150, n_communities=3, avg_degree=8.0, d=8),
        seed=1,
        name="ws-graph",
    )


def _one_hot(n, i):
    f = np.zeros(n)
    f[i] = 1.0
    return f


class TestReuseParity:
    @pytest.mark.parametrize("engine", list(ENGINES))
    def test_consecutive_queries_match_fresh_runs(self, graph, engine):
        """Two consecutive queries through one workspace match
        fresh-allocation results bitwise (the satellite requirement)."""
        fn = ENGINES[engine]
        ws = DiffusionWorkspace(graph)
        for seed in (3, 77):
            fresh = fn(graph, _one_hot(graph.n, seed), 0.8, 1e-4)
            ws.begin()
            reused = fn(graph, _one_hot(graph.n, seed), 0.8, 1e-4, workspace=ws)
            assert np.array_equal(reused.q, fresh.q)
            assert np.array_equal(reused.residual, fresh.residual)

    def test_mixed_engine_epsilon_sequence(self, graph):
        """Interleaving engines and thresholds cannot leak state."""
        ws = DiffusionWorkspace(graph)
        sequence = [
            ("greedy", 5, 1e-3),
            ("adaptive", 9, 1e-5),
            ("push", 5, 1e-3),
            ("nongreedy", 120, 1e-4),
            ("greedy", 5, 1e-5),
        ]
        for engine, seed, epsilon in sequence:
            fn = ENGINES[engine]
            fresh = fn(graph, _one_hot(graph.n, seed), 0.8, epsilon)
            ws.begin()
            reused = fn(graph, _one_hot(graph.n, seed), 0.8, epsilon, workspace=ws)
            assert np.array_equal(reused.q, fresh.q), (engine, seed, epsilon)
            assert np.array_equal(reused.residual, fresh.residual)

    def test_laca_scores_reuse_matches_fresh(self, graph):
        config = LacaConfig(metric="cosine", k=8, diffusion="adaptive", epsilon=1e-4)
        model = LACA(config).fit(graph)
        ws = model.make_workspace()
        for seed in (0, 42, 0, 99):
            fresh = laca_scores(graph, seed, config=config, tnam=model.tnam)
            reused = laca_scores(
                graph, seed, config=config, tnam=model.tnam, workspace=ws
            )
            assert np.array_equal(fresh.scores, reused.scores)
            assert np.array_equal(fresh.cluster(12), reused.cluster(12))

    def test_pipeline_cluster_with_workspace(self, graph):
        model = LACA(LacaConfig(metric="cosine", k=8, epsilon=1e-4)).fit(graph)
        ws = model.make_workspace()
        for seed in (1, 2, 3):
            plain = model.cluster(seed, 10)
            reused = model.cluster(seed, 10, workspace=ws)
            np.testing.assert_array_equal(plain, reused)
            # clusters are fresh arrays, never workspace views
            assert reused.base is None or reused.base is not ws.scores


class TestBufferHygiene:
    def test_begin_restores_pristine_buffers(self, graph):
        ws = DiffusionWorkspace(graph)
        ws.begin()
        greedy_diffuse(graph, _one_hot(graph.n, 3), 0.8, 1e-5, workspace=ws)
        ws.begin()
        for slot in ws._slots:
            assert not slot.q.any()
            assert not slot.r.any()
            assert not slot.seen.any()
        assert not ws.input.any()
        assert not ws.scores.any()
        assert not ws.in_queue.any()
        assert not ws.staging.any()

    def test_laca_query_then_begin_is_clean(self, graph):
        config = LacaConfig(metric="cosine", k=8, epsilon=1e-4)
        model = LACA(config).fit(graph)
        ws = model.make_workspace()
        laca_scores(graph, 7, config=config, tnam=model.tnam, workspace=ws)
        ws.begin()
        for slot in ws._slots:
            assert not slot.q.any() and not slot.r.any() and not slot.seen.any()
        assert not ws.input.any() and not ws.scores.any()

    def test_third_acquire_raises(self, graph):
        ws = DiffusionWorkspace(graph)
        ws.begin()
        greedy_diffuse(graph, _one_hot(graph.n, 1), 0.8, 1e-3, workspace=ws)
        greedy_diffuse(graph, _one_hot(graph.n, 2), 0.8, 1e-3, workspace=ws)
        with pytest.raises(RuntimeError, match="exhausted"):
            greedy_diffuse(graph, _one_hot(graph.n, 3), 0.8, 1e-3, workspace=ws)

    def test_push_failure_leaves_flags_clean(self, graph):
        ws = DiffusionWorkspace(graph)
        ws.begin()
        with pytest.raises(RuntimeError, match="exceeded"):
            push_diffuse(
                graph, _one_hot(graph.n, 0), 0.8, 1e-7, max_pushes=3, workspace=ws
            )
        assert not ws.in_queue.any()


class TestZeroAllocationHotPath:
    def test_local_query_allocates_no_length_n_arrays(self):
        """A steady-state query in the local regime must not allocate any
        length-``n`` array (the PR 3 serving contract)."""
        big = attributed_sbm(
            SBMConfig(n=40_000, n_communities=10, avg_degree=6.0, d=8),
            seed=3,
            name="ws-big",
        )
        config = LacaConfig(
            metric="cosine", k=8, diffusion="greedy", epsilon=1e-3
        )
        model = LACA(config).fit(big)
        ws = model.make_workspace()
        model.cluster(11, 8, workspace=ws)  # warm: caches and pools settled
        result = laca_scores(big, 12, config=config, tnam=model.tnam, workspace=ws)
        # ε=1e-3 bounds the touched volume at 5000 ≪ n/8: every scatter
        # stays on the zero-allocation unique route.
        assert 8 < result.scores_support.size < big.n // 8
        threshold = big.n * 8 // 2  # half a float64 length-n buffer
        tracemalloc.start()
        try:
            model.cluster(13, 8, workspace=ws)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        big_blocks = [
            trace for trace in snapshot.traces if trace.size >= threshold
        ]
        assert not big_blocks, (
            f"hot path allocated {len(big_blocks)} length-n-scale block(s)"
        )


class TestSortedUnion:
    def test_matches_union1d(self, rng):
        for _ in range(20):
            a = np.unique(rng.integers(0, 50, size=rng.integers(0, 30)))
            b = np.unique(rng.integers(0, 50, size=rng.integers(0, 30)))
            np.testing.assert_array_equal(sorted_union(a, b), np.union1d(a, b))

    def test_empty_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        assert sorted_union(empty, empty).size == 0
        np.testing.assert_array_equal(
            sorted_union(empty, np.array([3, 5])), np.array([3, 5])
        )
