"""Tests for the exact RWR / diffusion oracle."""

import numpy as np

from repro.diffusion.exact import exact_diffusion, exact_rwr, rwr_matrix


class TestExactRWR:
    def test_sums_to_one(self, tiny_graph):
        pi = exact_rwr(tiny_graph, 0, alpha=0.8)
        assert np.isclose(pi.sum(), 1.0)
        assert (pi >= 0).all()

    def test_matches_power_series(self, tiny_graph):
        """π = (1-α) Σ αℓ (e_s Pℓ) (Eq. 6), truncated far out."""
        alpha = 0.7
        pi = exact_rwr(tiny_graph, 2, alpha=alpha)
        series = np.zeros(tiny_graph.n)
        vector = np.zeros(tiny_graph.n)
        vector[2] = 1.0
        coefficient = 1.0 - alpha
        for _ in range(300):
            series += coefficient * vector
            vector = tiny_graph.apply_transition(vector)
            coefficient *= alpha
        assert np.allclose(pi, series, atol=1e-12)

    def test_seed_has_high_mass(self, small_sbm):
        pi = exact_rwr(small_sbm, 10, alpha=0.8)
        assert pi[10] == pi.max()

    def test_restart_factor_controls_spread(self, small_sbm):
        near = exact_rwr(small_sbm, 0, alpha=0.3)
        far = exact_rwr(small_sbm, 0, alpha=0.95)
        assert near[0] > far[0]  # small α keeps mass at the seed


class TestExactDiffusion:
    def test_linear_in_input(self, tiny_graph, rng):
        f1 = rng.random(6)
        f2 = rng.random(6)
        combined = exact_diffusion(tiny_graph, f1 + 2.0 * f2, alpha=0.8)
        separate = exact_diffusion(tiny_graph, f1, 0.8) + 2.0 * exact_diffusion(
            tiny_graph, f2, 0.8
        )
        assert np.allclose(combined, separate)

    def test_preserves_mass(self, small_sbm, rng):
        f = rng.random(small_sbm.n)
        q = exact_diffusion(small_sbm, f, alpha=0.8)
        assert np.isclose(q.sum(), f.sum())


class TestRWRMatrix:
    def test_rows_match_single_source(self, tiny_graph):
        matrix = rwr_matrix(tiny_graph, 0.8)
        for seed in range(tiny_graph.n):
            assert np.allclose(matrix[seed], exact_rwr(tiny_graph, seed, 0.8))

    def test_symmetry_identity(self, tiny_graph):
        """d(vi)·π(vi, vj) = d(vj)·π(vj, vi) (Lemma 1 of [43])."""
        matrix = rwr_matrix(tiny_graph, 0.8)
        degrees = tiny_graph.degrees
        left = degrees[:, None] * matrix
        assert np.allclose(left, left.T)
