"""AdaptiveDiffuse-specific behaviour (Algo 2, Lemma IV.3)."""

import numpy as np
import pytest

from repro.diffusion.adaptive import adaptive_diffuse
from repro.diffusion.greedy import greedy_diffuse


def _one_hot(n, index):
    vector = np.zeros(n)
    vector[index] = 1.0
    return vector


class TestStrategyMix:
    def test_sigma_zero_prefers_nongreedy(self, small_sbm):
        result = adaptive_diffuse(
            small_sbm, _one_hot(small_sbm.n, 0), alpha=0.8, sigma=0.0, epsilon=1e-5
        )
        assert result.nongreedy_steps > 0

    def test_sigma_one_plus_is_pure_greedy(self, small_sbm):
        """σ ≥ 1 disables non-greedy (Lemma IV.3's β = 1 case)."""
        adaptive = adaptive_diffuse(
            small_sbm, _one_hot(small_sbm.n, 5), alpha=0.8, sigma=1.0, epsilon=1e-5
        )
        assert adaptive.nongreedy_steps == 0
        greedy = greedy_diffuse(
            small_sbm, _one_hot(small_sbm.n, 5), alpha=0.8, epsilon=1e-5
        )
        assert np.allclose(adaptive.q, greedy.q)
        assert adaptive.iterations == greedy.iterations

    def test_counts_sum(self, small_sbm):
        result = adaptive_diffuse(
            small_sbm, _one_hot(small_sbm.n, 1), alpha=0.8, sigma=0.3, epsilon=1e-5
        )
        assert result.greedy_steps + result.nongreedy_steps == result.iterations


class TestLemmaIV3:
    @pytest.mark.parametrize("sigma", [0.0, 0.1, 0.5, 1.0])
    def test_volume_bound(self, small_sbm, sigma):
        """vol(q) ≤ β·‖f‖₁ / ((1-α)ε) with β ≤ 2 (β ≤ 1 for σ ≥ 1)."""
        alpha, epsilon = 0.8, 1e-3
        f = _one_hot(small_sbm.n, 2)
        result = adaptive_diffuse(
            small_sbm, f, alpha=alpha, sigma=sigma, epsilon=epsilon
        )
        beta = 1.0 if sigma >= 1.0 else 2.0
        bound = beta * 1.0 / ((1.0 - alpha) * epsilon)
        volume = small_sbm.vector_volume(result.q)
        assert volume <= bound + 1e-9
        assert result.support_size <= volume

    def test_nongreedy_cost_stays_under_budget(self, small_sbm):
        """Ctot (non-greedy work) never exceeds ‖f‖₁ / ((1-α)ε)."""
        alpha, epsilon = 0.8, 1e-4
        f = _one_hot(small_sbm.n, 0)
        result = adaptive_diffuse(
            small_sbm, f, alpha=alpha, sigma=0.0, epsilon=epsilon
        )
        budget = 1.0 / ((1.0 - alpha) * epsilon)
        # Total work (greedy + non-greedy) is within twice the budget.
        assert result.work <= 2.0 * budget


class TestParameters:
    def test_rejects_negative_sigma(self, small_sbm):
        with pytest.raises(ValueError, match="sigma"):
            adaptive_diffuse(
                small_sbm, _one_hot(small_sbm.n, 0), sigma=-0.1, epsilon=1e-4
            )

    def test_history_tracking(self, small_sbm):
        result = adaptive_diffuse(
            small_sbm,
            _one_hot(small_sbm.n, 0),
            epsilon=1e-4,
            track_history=True,
        )
        assert len(result.residual_history) == result.iterations
        # Residual ultimately decays below its starting mass.
        assert result.residual_history[-1] < 1.0

    def test_faster_than_greedy_on_iterations(self, medium_sbm):
        """The headline: adaptive terminates in no more iterations than
        greedy at equal ε (usually far fewer)."""
        f = _one_hot(medium_sbm.n, 3)
        greedy = greedy_diffuse(medium_sbm, f, alpha=0.9, epsilon=1e-5)
        adaptive = adaptive_diffuse(
            medium_sbm, f, alpha=0.9, sigma=0.1, epsilon=1e-5
        )
        assert adaptive.iterations <= greedy.iterations
