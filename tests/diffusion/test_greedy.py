"""GreedyDiffuse-specific behaviour (Algo 1, Theorem IV.1)."""

import numpy as np
import pytest

from repro.diffusion.greedy import greedy_diffuse
from repro.diffusion.push import push_diffuse


def _one_hot(n, index):
    vector = np.zeros(n)
    vector[index] = 1.0
    return vector


class TestPaperExample:
    """The running example of Fig. 4 (α = 0.8, ε = 0.1)."""

    @pytest.fixture()
    def example_graph(self):
        from repro.graphs.graph import AttributedGraph

        # Fig. 4's 10-node graph: v1 has neighbors v2..v5; v2 has v1, v3,
        # v4; v5 connects onward to v6..; reconstructed to match the
        # degrees used in the walk-through: d(v1)=4, d(v2)=3, d(v3)=2,
        # d(v4)=2, d(v5)=5.
        edges = [
            (0, 1), (0, 2), (0, 3), (0, 4),   # v1 – v2..v5
            (1, 2), (1, 3),                   # v2 – v3, v4
            (4, 5), (4, 6), (4, 7), (4, 8),   # v5 – v6..v9
            (5, 9), (6, 9), (7, 8),           # periphery
        ]
        return AttributedGraph.from_edges(10, edges, name="fig4")

    def test_first_iteration_matches_paper(self, example_graph):
        """First batch converts (1-α)·0.4 and (1-α)·0.6 into reserves."""
        assert example_graph.degree(0) == 4.0
        assert example_graph.degree(1) == 3.0
        f = np.zeros(10)
        f[0], f[1] = 0.4, 0.6
        result = greedy_diffuse(example_graph, f, alpha=0.8, epsilon=0.1)
        # v1's reserve gets its initial conversion 0.2·0.4 = 0.08 (plus
        # possibly later conversions); it can never drop below that.
        assert result.q[0] >= 0.08 - 1e-12
        assert result.q[1] >= 0.12 - 1e-12

    def test_two_iterations_then_terminate(self, example_graph):
        f = np.zeros(10)
        f[0], f[1] = 0.4, 0.6
        result = greedy_diffuse(example_graph, f, alpha=0.8, epsilon=0.1)
        # The paper's walk-through terminates after 2 iterations with
        # v1-v2 residuals 0.352 / 0.272 — our graph differs slightly in
        # wiring, but termination must leave all residuals sub-threshold.
        assert (result.residual < 0.1 * example_graph.degrees).all()
        assert result.iterations <= 4


class TestBehaviour:
    def test_below_threshold_residuals_never_convert(self, small_sbm):
        """Nodes whose residual stays below ε·d never receive reserve."""
        epsilon = 5e-2
        f = _one_hot(small_sbm.n, 4)
        result = greedy_diffuse(small_sbm, f, alpha=0.8, epsilon=epsilon)
        # Reserve support must be a subset of nodes that ever crossed the
        # threshold; everything in q's support got (1-α)·(≥ ε·d) at least
        # once, so q_i ≥ (1-α)·ε·d_i on the support.
        support = result.support
        floor = (1.0 - 0.8) * epsilon * small_sbm.degrees[support]
        assert (result.q[support] >= floor - 1e-12).all()

    def test_work_bound_theorem_iv1(self, small_sbm):
        """Work ≤ ‖f‖₁ / ((1-α)ε) (Theorem IV.1's dominant term)."""
        alpha, epsilon = 0.8, 1e-4
        f = _one_hot(small_sbm.n, 0)
        result = greedy_diffuse(small_sbm, f, alpha=alpha, epsilon=epsilon)
        assert result.work <= 1.0 / ((1.0 - alpha) * epsilon) + small_sbm.n

    def test_agrees_with_push_on_converged_scores(self, small_sbm):
        """Greedy (batched) and push (node-at-a-time) both satisfy Eq. 14;
        at small ε their outputs nearly coincide."""
        f = _one_hot(small_sbm.n, 9)
        batched = greedy_diffuse(small_sbm, f, alpha=0.8, epsilon=1e-7)
        pushed = push_diffuse(small_sbm, f, alpha=0.8, epsilon=1e-7)
        assert np.abs(batched.q - pushed.q).max() < 1e-5

    def test_max_iterations_raises(self, medium_sbm):
        f = _one_hot(medium_sbm.n, 0)
        with pytest.raises(RuntimeError, match="did not terminate"):
            greedy_diffuse(medium_sbm, f, alpha=0.9, epsilon=1e-8, max_iterations=2)

    def test_larger_epsilon_less_work(self, small_sbm):
        f = _one_hot(small_sbm.n, 0)
        loose = greedy_diffuse(small_sbm, f, alpha=0.8, epsilon=1e-2)
        tight = greedy_diffuse(small_sbm, f, alpha=0.8, epsilon=1e-6)
        assert loose.work <= tight.work
        assert loose.support_size <= tight.support_size
