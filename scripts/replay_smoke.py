#!/usr/bin/env python
"""Replay smoke: a small dynamic-SBM trace through the worker pool.

Generates a seeded evolving-community scenario (membership churn,
births, one merge), replays its delta stream and a Zipf-seeded mixed
query trace through ``PoolClusterService`` with 2 workers, and demands
a perfect run:

* every query drains — zero shed, zero deadline misses, zero lost
  futures;
* tracking recall against the planted evolving partition is nonzero
  (the service actually follows the communities it is asked about);
* the periodic verify pass — a from-scratch refit at the epoch head —
  matches the incrementally refreshed answers bitwise;
* the pool closes cleanly with all workers alive.

Exits non-zero with a reason on any violation.  Used by CI; also handy
manually::

    PYTHONPATH=src python scripts/replay_smoke.py
"""

from __future__ import annotations

import sys

from repro.core.config import LacaConfig
from repro.core.pipeline import LACA
from repro.graphs import GraphStore
from repro.scenarios import DynamicSBMConfig, ReplayConfig, generate_dynamic_sbm, replay
from repro.serving import PoolClusterService

EPOCHS = 4
QUERIES_PER_EPOCH = 24
WORKERS = 2


def fail(reason: str) -> None:
    print(f"REPLAY SMOKE FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    scenario = generate_dynamic_sbm(
        DynamicSBMConfig(
            n=300,
            n_communities=4,
            avg_degree=6.0,
            d=16,
            epochs=EPOCHS,
            churn_fraction=0.02,
            birth_fraction=0.01,
            merge_epochs=(3,),
        ),
        seed=7,
    )
    model = LACA(LacaConfig(k=8)).fit(scenario.base)
    store = GraphStore(scenario.base, history=EPOCHS + 1)
    service = PoolClusterService(
        model, workers=WORKERS, store=store, max_batch=8,
        max_wait_s=0.002, cache_size=1024,
    )
    try:
        result = replay(
            service,
            scenario,
            ReplayConfig(
                queries_per_epoch=QUERIES_PER_EPOCH,
                seed=3,
                verify_every=2,
                verify_sample=2,
                drain_before_update=True,
            ),
        )
        stats = service.stats()
    finally:
        service.close(timeout=60)

    summary = result.summary()
    if summary["queries"] != EPOCHS * QUERIES_PER_EPOCH:
        fail(
            f"expected {EPOCHS * QUERIES_PER_EPOCH} drained queries, "
            f"got {summary['queries']}"
        )
    if summary["shed"] or summary["deadline_misses"]:
        fail(
            f"lossy drain: shed={summary['shed']} "
            f"deadline_misses={summary['deadline_misses']}"
        )
    if not summary["mean_tracking_recall"] or summary["mean_tracking_recall"] <= 0:
        fail(f"tracking recall is {summary['mean_tracking_recall']!r}, want > 0")
    if summary["all_verified_bitwise"] is not True:
        fail("verify-vs-refit pass did not confirm bitwise equality")
    if stats["workers_alive"] != WORKERS:
        fail(f"expected {WORKERS} live workers, got {stats['workers_alive']}")

    print(
        f"REPLAY SMOKE OK: {summary['queries']} queries over "
        f"{summary['epochs']} epochs, recall "
        f"{summary['mean_tracking_recall']:.3f}, p50 "
        f"{summary['query_p50_ms']:.2f} ms, verified bitwise"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
