#!/usr/bin/env python
"""Benchmark report: record the serving-path performance trajectory.

Runs the performance suite that matters for the serving north star and
writes one JSON document (``BENCH_pr9.json`` by default) so the perf
trajectory is tracked in-repo instead of vanishing with each session:

* single-seed queries/sec — frontier kernels + workspace vs. the
  retained pre-PR3 reference kernels, on the Fig. 10 scalability graph
  at default ε (the PR 3 acceptance evidence) and at the registered
  scale;
* batched seeds/sec across block widths (the PR 1 win, re-measured);
* serving latency — p50/p95 and occupancy through a live
  :class:`ClusterService` under concurrent load (the PR 2 win);
* per-engine iteration work — the Theorem IV.1 cost-model numbers;
* update throughput — incremental ``GraphStore.apply`` +
  ``LACA.refresh`` vs. the full-refit cold path, post-update query
  latency, and cache invalidation behavior (the PR 5 acceptance
  evidence: ≥ 5× for single-edge deltas on the Fig. 10 graph);
* pool throughput — :class:`PoolClusterService` (worker processes over
  a shared-memory graph) vs. the single-process service at 256
  in-flight requests on the Fig. 10 graph, with a bitwise-identity
  check over every answer (the PR 6 acceptance evidence; the ≥ 3× bar
  itself is host-dependent — ``cpu_count`` is recorded alongside);
* observability overhead — the same serving drain with full tracing
  (every span written to a JSONL trace log) vs. tracing off, on the
  Fig. 10 graph (the PR 7 acceptance evidence: < 3% seeds/s cost);
* fault tolerance — WAL durability cost per delta (no log / buffered /
  fsync-per-record) and the pool's retry path under an injected worker
  kill: p95 latency and seeds/s with one deterministic worker death
  mid-drain, with a bitwise-identity check vs. the undisturbed run
  (the PR 8 acceptance evidence);
* scenario replay — a seeded 21-epoch dynamic-SBM community-tracking
  trace (churn, births/deaths, drift, one merge, one split) replayed
  as a mixed read/write stream through both the single-process service
  and the pool: update throughput, query p50/p95, cache hit and
  invalidation rates, per-epoch tracking recall, and a bitwise
  verify-vs-refit at every epoch (the PR 9 acceptance evidence).

Usage::

    PYTHONPATH=src python scripts/bench_report.py              # full, ~3 min
    PYTHONPATH=src python scripts/bench_report.py --smoke      # CI, ~40 s
    PYTHONPATH=src python scripts/bench_report.py --out X.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from concurrent.futures import wait

import numpy as np

import repro.core.laca as laca_mod
from repro.core.config import LacaConfig
from repro.core.laca import laca_scores
from repro.core.pipeline import LACA
from repro.diffusion import reference as ref
from repro.eval.harness import latency_percentile
from repro.graphs import (
    AttributedGraph,
    GraphDelta,
    GraphStore,
    random_absent_edges,
)
from repro.graphs.datasets import load_dataset
from repro.serving import ClusterService, PoolClusterService

REFERENCE_PATCHES = {
    "greedy_diffuse": (
        lambda g, f, alpha, epsilon, workspace=None, f_support=None:
        ref.reference_greedy_diffuse(g, f, alpha, epsilon)
    ),
    "nongreedy_diffuse": (
        lambda g, f, alpha, epsilon, workspace=None, f_support=None:
        ref.reference_nongreedy_diffuse(g, f, alpha, epsilon)
    ),
    "adaptive_diffuse": (
        lambda g, f, alpha, sigma, epsilon, workspace=None, f_support=None:
        ref.reference_adaptive_diffuse(g, f, alpha, sigma, epsilon)
    ),
    "push_diffuse": (
        lambda g, f, alpha, epsilon, workspace=None, f_support=None:
        ref.reference_push_diffuse(g, f, alpha, epsilon)
    ),
}


class _reference_kernels:
    """Context manager swapping laca's engines for the pre-PR3 kernels."""

    def __enter__(self):
        self._saved = {name: getattr(laca_mod, name) for name in REFERENCE_PATCHES}
        for name, patched in REFERENCE_PATCHES.items():
            setattr(laca_mod, name, patched)

    def __exit__(self, *_exc):
        for name, saved in self._saved.items():
            setattr(laca_mod, name, saved)


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_single_seed(scale: float, engines, n_seeds: int, repeats: int) -> dict:
    graph = load_dataset("arxiv", scale=scale)
    seeds = [
        int(s)
        for s in np.random.default_rng(0).choice(graph.n, n_seeds, replace=False)
    ]
    out = {
        "graph": "arxiv",
        "scale": scale,
        "n": graph.n,
        "nnz": int(graph.adjacency.nnz),
        "epsilon": LacaConfig().epsilon,
        "n_seeds": n_seeds,
        "engines": {},
    }
    for engine in engines:
        config = LacaConfig(metric="cosine", diffusion=engine)
        model = LACA(config).fit(graph)
        workspace = model.make_workspace()

        def frontier():
            for seed in seeds:
                laca_scores(
                    graph, seed, config=config, tnam=model.tnam, workspace=workspace
                )

        def reference():
            for seed in seeds:
                laca_scores(graph, seed, config=config, tnam=model.tnam)

        frontier()  # warm
        new_s = _best_of(repeats, frontier)
        with _reference_kernels():
            reference()  # warm
            old_s = _best_of(max(1, repeats - 1), reference)
        out["engines"][engine] = {
            "reference_ms_per_query": round(old_s / n_seeds * 1e3, 3),
            "frontier_ms_per_query": round(new_s / n_seeds * 1e3, 3),
            "reference_qps": round(n_seeds / old_s, 1),
            "frontier_qps": round(n_seeds / new_s, 1),
            "speedup": round(old_s / new_s, 2),
        }
    return out


def bench_batched(scale: float, n_seeds: int) -> dict:
    graph = load_dataset("arxiv", scale=scale)
    model = LACA(LacaConfig(metric="cosine", diffusion="greedy")).fit(graph)
    seeds = [
        int(s)
        for s in np.random.default_rng(1).choice(graph.n, n_seeds, replace=False)
    ]
    model.cluster_many(seeds[:4], size=20)  # warm
    rates = {}
    for batch in (1, 16, 64):
        elapsed = _best_of(
            2, lambda: model.cluster_many(seeds, size=20, batch_size=batch)
        )
        rates[str(batch)] = round(len(seeds) / elapsed, 1)
    return {
        "graph": "arxiv",
        "scale": scale,
        "engine": "greedy",
        "seeds_per_s_by_batch": rates,
        "batch64_vs_sequential": round(rates["64"] / rates["1"], 2),
    }


def bench_serving(scale: float, n_requests: int) -> dict:
    graph = load_dataset("arxiv", scale=scale)
    model = LACA(LacaConfig(metric="cosine", diffusion="greedy")).fit(graph)
    rng = np.random.default_rng(2)
    seeds = rng.choice(graph.n, size=n_requests, replace=True)
    with ClusterService(model, max_batch=32, max_wait_s=0.002, cache_size=0) as svc:
        futures = [svc.submit(int(s), 20) for s in seeds]
        wait(futures)
        stats = svc.stats()
    return {
        "graph": "arxiv",
        "scale": scale,
        "requests": n_requests,
        "p50_latency_ms": round(stats["p50_latency_s"] * 1e3, 3),
        "p95_latency_ms": round(stats["p95_latency_s"] * 1e3, 3),
        "mean_batch_occupancy": stats["mean_batch_occupancy"],
        "seeds_per_s": stats["seeds_per_s"],
    }


def bench_engine_work(scale: float) -> dict:
    """Theorem IV.1 cost-model numbers per engine (iterations / work)."""
    graph = load_dataset("arxiv", scale=scale)
    per_engine = {}
    for engine in ("greedy", "nongreedy", "adaptive", "push"):
        config = LacaConfig(metric="cosine", diffusion=engine)
        model = LACA(config).fit(graph)
        result = laca_scores(graph, 123, config=config, tnam=model.tnam)
        per_engine[engine] = {
            "rwr_iterations": int(result.rwr.iterations),
            "rwr_work": round(float(result.rwr.work), 1),
            "bdd_iterations": int(result.bdd.iterations),
            "bdd_work": round(float(result.bdd.work), 1),
            "score_support": int(result.support_size),
            "work_bound": round(1.0 / ((1.0 - config.alpha) * config.epsilon), 1),
        }
    return {"graph": "arxiv", "scale": scale, "seed": 123, "engines": per_engine}


def bench_updates(scale: float, n_deltas: int, n_queries: int) -> dict:
    """Incremental update throughput vs. the full-refit cold path, plus
    post-update serving latency and cache invalidation behavior."""
    graph = load_dataset("arxiv", scale=scale)
    config = LacaConfig(metric="cosine", diffusion="greedy")
    model = LACA(config).fit(graph)
    rng = np.random.default_rng(5)

    # The pre-store cold path: rebuild the graph object from the full
    # edge list and re-run Algo 3 (same measurement as
    # benchmarks/test_bench_update.py, which gates the 5x bar on it).
    edges = graph.edge_list()
    start = time.perf_counter()
    rebuilt = AttributedGraph.from_edges(
        graph.n, edges, attributes=graph.attributes,
        communities=graph.communities, name=graph.name,
    )
    LACA(config).fit(rebuilt)
    refit_s = time.perf_counter() - start

    # Incremental single-edge deltas: store.apply + model.refresh.
    store = GraphStore(graph)
    model.refresh(store)
    pairs = random_absent_edges(graph, n_deltas, rng)
    start = time.perf_counter()
    for u, v in pairs:
        store.apply(GraphDelta(add_edges=[(u, v)]))
        model.refresh(store)
    per_delta_s = (time.perf_counter() - start) / len(pairs)

    # Post-update serving: warm a cache, apply one more delta through
    # the live service, re-ask the same queries.
    seeds = rng.choice(store.head.n, size=n_queries, replace=True)
    with ClusterService(
        model, store=store, max_batch=32, max_wait_s=0.002, cache_size=4096
    ) as service:
        wait([service.submit(int(s), 20) for s in seeds])
        update_stats = service.apply_update(
            GraphDelta(add_edges=random_absent_edges(store.head, 1, rng))
        )
        latencies = []
        for s in seeds:
            begin = time.perf_counter()
            service.cluster(int(s), 20)
            latencies.append(time.perf_counter() - begin)
        stats = service.stats()
    reconciled = (
        update_stats["entries_promoted"] + update_stats["entries_invalidated"]
    )
    return {
        "graph": "arxiv",
        "scale": scale,
        "n": store.head.n,
        "nnz": int(store.head.adjacency.nnz),
        "full_refit_s": round(refit_s, 3),
        "single_edge_deltas": len(pairs),
        "incremental_ms_per_delta": round(per_delta_s * 1e3, 3),
        "deltas_per_s": round(1.0 / per_delta_s, 1),
        "speedup_vs_refit": round(refit_s / per_delta_s, 1),
        "post_update_query_p50_ms": round(
            latency_percentile(latencies, 50.0) * 1e3, 3
        ),
        "post_update_query_p95_ms": round(
            latency_percentile(latencies, 95.0) * 1e3, 3
        ),
        "update_latency_s": update_stats["update_s"],
        "entries_promoted": update_stats["entries_promoted"],
        "entries_invalidated": update_stats["entries_invalidated"],
        "invalidation_rate": round(
            update_stats["entries_invalidated"] / reconciled, 4
        ) if reconciled else 0.0,
        "post_update_cache_served": stats["cache_served"],
    }


def bench_pool(scale: float, n_requests: int, workers: int) -> dict:
    """Pool vs. single-process throughput at ``n_requests`` in-flight,
    plus the bitwise-identity check over every answer (PR 6 evidence).

    The speedup is whatever the host's cores allow — ``cpu_count`` is
    recorded so a 1-core CI number is never mistaken for a regression.
    """
    graph = load_dataset("arxiv", scale=scale)
    model = LACA(LacaConfig(metric="cosine", diffusion="greedy")).fit(graph)
    seeds = [
        int(s)
        for s in np.random.default_rng(3).choice(
            graph.n, size=n_requests, replace=True
        )
    ]

    def drain(service):
        start = time.perf_counter()
        futures = [service.submit(seed, 20) for seed in seeds]
        wait(futures)
        elapsed = time.perf_counter() - start
        return [future.result() for future in futures], elapsed

    with ClusterService(
        model, max_batch=32, max_wait_s=0.002, cache_size=0
    ) as service:
        drain(service)  # warm
        single, single_s = drain(service)
    with PoolClusterService(
        model, workers=workers, max_batch=32, max_wait_s=0.002, cache_size=0
    ) as pool:
        drain(pool)  # warm (workers touch their shared pages)
        pooled, pool_s = drain(pool)
        stats = pool.stats()
    return {
        "graph": "arxiv",
        "scale": scale,
        "requests_in_flight": n_requests,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "bitwise_identical": all(
            np.array_equal(a, b) for a, b in zip(single, pooled)
        ),
        "single_process_s": round(single_s, 3),
        "pool_s": round(pool_s, 3),
        "single_process_seeds_per_s": round(n_requests / single_s, 1),
        "pool_seeds_per_s": round(n_requests / pool_s, 1),
        "pool_speedup": round(single_s / pool_s, 2),
        "worker_occupancy": stats["worker_occupancy"],
        "shed": stats["shed"],
        "deadline_misses": stats["deadline_misses"],
    }


def bench_observability(scale: float, n_requests: int, repeats: int) -> dict:
    """Serving throughput with tracing fully on vs. off (PR 7 evidence).

    "On" is the worst case an operator can configure: every request span
    written to the JSONL trace log (``sample_rate=1.0``), metrics
    registry live (it always is).  "Off" is the same service without a
    trace log.  Best-of-``repeats`` drains keep scheduler noise out of
    the comparison; the acceptance bar is < 3% seeds/s overhead.
    """
    import tempfile

    from repro.obs import TraceLog

    graph = load_dataset("arxiv", scale=scale)
    model = LACA(LacaConfig(metric="cosine", diffusion="greedy")).fit(graph)
    seeds = [
        int(s)
        for s in np.random.default_rng(4).choice(
            graph.n, size=n_requests, replace=True
        )
    ]

    def drain_once(trace_log) -> float:
        with ClusterService(
            model, max_batch=32, max_wait_s=0.002, cache_size=0,
            trace_log=trace_log,
        ) as service:
            wait([service.submit(seed, 20) for seed in seeds])  # warm
            start = time.perf_counter()
            wait([service.submit(seed, 20) for seed in seeds])
            return time.perf_counter() - start

    off_s = min(drain_once(None) for _ in range(repeats))
    with tempfile.TemporaryDirectory() as tmp:
        spans_written = 0
        on_s = float("inf")
        for index in range(repeats):
            with TraceLog(
                os.path.join(tmp, f"trace-{index}.jsonl"), sample_rate=1.0
            ) as trace_log:
                on_s = min(on_s, drain_once(trace_log))
                spans_written = trace_log.spans_sampled
    off_rate = n_requests / off_s
    on_rate = n_requests / on_s
    return {
        "graph": "arxiv",
        "scale": scale,
        "requests": n_requests,
        "repeats": repeats,
        "trace_sample_rate": 1.0,
        "spans_written_per_drain": spans_written,
        "tracing_off_seeds_per_s": round(off_rate, 1),
        "tracing_on_seeds_per_s": round(on_rate, 1),
        "overhead_pct": round((off_rate - on_rate) / off_rate * 100.0, 2),
    }


def bench_fault_tolerance(
    scale: float, n_deltas: int, n_requests: int, workers: int
) -> dict:
    """WAL durability cost and the retry path's latency (PR 8 evidence).

    The WAL rows isolate the logging cost of ``GraphStore.apply``: the
    same single-edge delta stream with no log, with a buffered log
    (``fsync="never"``), and with a per-record fsync.  The retry rows
    drain the same request set through the pool twice — undisturbed,
    then with one deterministic worker kill on its first block — and
    demand bitwise-identical answers either way.
    """
    import tempfile

    from repro.graphs.wal import GraphWAL
    from repro.testing import FaultPlan, FaultRule

    graph = load_dataset("arxiv", scale=scale)
    rng = np.random.default_rng(6)
    deltas = [
        GraphDelta(add_edges=[(u, v)])
        for u, v in random_absent_edges(graph, n_deltas, rng)
    ]
    wal_ms = {}
    with tempfile.TemporaryDirectory() as tmp:
        for policy in ("none", "never", "always"):
            wal = (
                None
                if policy == "none"
                else GraphWAL(os.path.join(tmp, f"{policy}.wal"), fsync=policy)
            )
            store = GraphStore(graph, wal=wal)
            start = time.perf_counter()
            for delta in deltas:
                store.apply(delta)
            wal_ms[policy] = (time.perf_counter() - start) / len(deltas) * 1e3
            if wal is not None:
                wal.close()

    model = LACA(LacaConfig(metric="cosine", diffusion="greedy")).fit(graph)
    seeds = [
        int(s)
        for s in np.random.default_rng(7).choice(
            graph.n, size=n_requests, replace=True
        )
    ]

    def drain(fault_plan):
        service = PoolClusterService(
            model, workers=workers, max_batch=32, max_wait_s=0.002,
            cache_size=0, fault_plan=fault_plan, backoff_base_s=0.05,
        )
        try:
            start = time.perf_counter()
            futures = [service.submit(seed, 20) for seed in seeds]
            wait(futures)
            elapsed = time.perf_counter() - start
            return (
                [future.result() for future in futures],
                elapsed,
                service.stats(),
            )
        finally:
            service.close(timeout=60)

    clean, clean_s, clean_stats = drain(None)
    chaos, chaos_s, chaos_stats = drain(
        FaultPlan(
            [
                FaultRule(
                    site="worker.block",
                    match={"worker_id": 0, "spawn": 0},
                    action="exit",
                )
            ]
        )
    )
    return {
        "graph": "arxiv",
        "scale": scale,
        "wal_deltas": len(deltas),
        "apply_ms_per_delta_no_wal": round(wal_ms["none"], 3),
        "apply_ms_per_delta_wal_buffered": round(wal_ms["never"], 3),
        "apply_ms_per_delta_wal_fsync": round(wal_ms["always"], 3),
        "wal_fsync_overhead_pct": round(
            (wal_ms["always"] - wal_ms["none"]) / wal_ms["none"] * 100.0, 1
        ),
        "requests_in_flight": n_requests,
        "workers": workers,
        "bitwise_identical_through_kill": all(
            np.array_equal(a, b) for a, b in zip(clean, chaos)
        ),
        "clean_seeds_per_s": round(n_requests / clean_s, 1),
        "one_kill_seeds_per_s": round(n_requests / chaos_s, 1),
        "clean_p95_latency_ms": round(clean_stats["p95_latency_s"] * 1e3, 3),
        "one_kill_p95_latency_ms": round(
            chaos_stats["p95_latency_s"] * 1e3, 3
        ),
        "worker_restarts": chaos_stats["worker_restarts"],
        "block_retries": chaos_stats["block_retries"],
    }


def bench_scenario_replay(
    n: int, epochs: int, queries_per_epoch: int, workers: int, verify_every: int
) -> dict:
    """Temporal scenario replay through both serving front-ends (PR 9).

    One seeded dynamic-SBM trace — community churn, births/deaths,
    attribute drift, one scheduled merge and one split — replayed as a
    mixed read/write stream (Zipf-seeded queries interleaved with the
    epoch deltas) through the single-process service and the worker
    pool.  ``verify_every=1`` refits a fresh model from scratch at every
    epoch and demands the incrementally refreshed answers be bitwise
    identical; tracking recall scores each answer against the planted
    evolving partition.
    """
    from repro.scenarios import (
        DynamicSBMConfig,
        ReplayConfig,
        generate_dynamic_sbm,
        replay,
    )

    scenario = generate_dynamic_sbm(
        DynamicSBMConfig(
            n=n,
            n_communities=8,
            avg_degree=8.0,
            mixing=0.08,
            d=32,
            epochs=epochs,
            churn_fraction=0.01,
            birth_fraction=0.005,
            death_fraction=0.003,
            drift_fraction=0.01,
            merge_epochs=(max(2, epochs // 3),),
            split_epochs=(max(3, (2 * epochs) // 3),),
        ),
        seed=9,
    )
    replay_config = ReplayConfig(
        queries_per_epoch=queries_per_epoch,
        seed=13,
        verify_every=verify_every,
        verify_sample=2,
        drain_before_update=True,
    )
    config = LacaConfig(metric="cosine", diffusion="greedy")

    out = {
        "scenario": {
            "n": n,
            "communities": 8,
            "epochs": epochs,
            "queries_per_epoch": queries_per_epoch,
            "total_queries": epochs * queries_per_epoch,
            "verify_every": verify_every,
        },
    }
    for name in ("service", "pool"):
        model = LACA(config).fit(scenario.base)
        store = GraphStore(scenario.base, history=epochs + 1)
        if name == "pool":
            service = PoolClusterService(
                model, workers=workers, store=store, max_batch=32,
                max_wait_s=0.002, cache_size=4096,
            )
        else:
            service = ClusterService(
                model, store=store, max_batch=32, max_wait_s=0.002,
                cache_size=4096,
            )
        try:
            result = replay(service, scenario, replay_config)
        finally:
            service.close(timeout=60)
        summary = result.summary()
        out[name] = {
            "workers": workers if name == "pool" else 1,
            "queries": summary["queries"],
            "query_p50_ms": summary["query_p50_ms"],
            "query_p95_ms": summary["query_p95_ms"],
            "mean_update_s": summary["mean_update_s"],
            "updates_per_s": summary["updates_per_s"],
            "mean_tracking_recall": summary["mean_tracking_recall"],
            "mean_tracked_stability": summary["mean_tracked_stability"],
            "cache_hit_rate": summary["cache_hit_rate"],
            "entries_promoted": summary["entries_promoted"],
            "entries_invalidated": summary["entries_invalidated"],
            "shed": summary["shed"],
            "deadline_misses": summary["deadline_misses"],
            "all_verified_bitwise": summary["all_verified_bitwise"],
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_pr9.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sizes for CI (same shape, smaller graphs)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        big_scale, small_scale, n_seeds, repeats = 4.0, 0.5, 4, 1
        batch_seeds, serve_requests = 64, 64
        update_deltas, update_queries = 8, 32
        pool_scale, pool_requests, pool_workers = 4.0, 64, 2
        obs_requests, obs_repeats = 64, 2
        ft_deltas, ft_requests = 8, 64
        replay_n, replay_epochs, replay_queries, replay_verify = 400, 5, 24, 2
    else:
        big_scale, small_scale, n_seeds, repeats = 21.0, 1.0, 8, 3
        batch_seeds, serve_requests = 192, 256
        update_deltas, update_queries = 32, 128
        pool_scale, pool_requests = 21.0, 256
        pool_workers = min(4, max(2, os.cpu_count() or 1))
        obs_requests, obs_repeats = 256, 3
        ft_deltas, ft_requests = 32, 256
        replay_n, replay_epochs, replay_queries, replay_verify = 2000, 21, 256, 1

    started = time.time()
    report = {
        "pr": 9,
        "smoke": args.smoke,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        # The headline measurement: the Fig. 10 scalability graph at the
        # paper's ogbn-arxiv size (scale 21 ⇒ n = 168k), default ε.
        "single_seed_scalability": bench_single_seed(
            big_scale, ("adaptive", "greedy"), n_seeds, repeats
        ),
        "single_seed_registered_scale": bench_single_seed(
            small_scale, ("adaptive", "greedy"), max(8, n_seeds), repeats
        ),
        "batched": bench_batched(small_scale, batch_seeds),
        "serving": bench_serving(small_scale, serve_requests),
        "engine_work": bench_engine_work(small_scale),
        # The PR 5 acceptance evidence: incremental updates on the same
        # Fig. 10 graph the single-seed headline uses.
        "update_throughput": bench_updates(
            big_scale, update_deltas, update_queries
        ),
        # The PR 6 acceptance evidence: the worker pool over the shared-
        # memory graph vs. the single-process service, 256 in-flight.
        "pool_throughput": bench_pool(pool_scale, pool_requests, pool_workers),
        # The PR 7 acceptance evidence: full tracing costs < 3% seeds/s
        # on the same Fig. 10 serving drain.
        "observability_overhead": bench_observability(
            pool_scale, obs_requests, obs_repeats
        ),
        # The PR 8 acceptance evidence: WAL durability cost per delta
        # and the retry path under one deterministic worker kill.
        "fault_tolerance": bench_fault_tolerance(
            pool_scale, ft_deltas, ft_requests, pool_workers
        ),
        # The PR 9 acceptance evidence: a ≥20-epoch evolving-community
        # trace with ≥5k mixed queries through both front-ends, every
        # epoch's answers verified bitwise against a from-scratch refit.
        "scenario_replay": bench_scenario_replay(
            replay_n, replay_epochs, replay_queries, pool_workers,
            replay_verify,
        ),
    }
    report["wall_seconds"] = round(time.time() - started, 1)

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")

    headline = report["single_seed_scalability"]["engines"]
    for engine, row in headline.items():
        print(
            f"{engine:10s} {row['reference_qps']:7.1f} -> {row['frontier_qps']:7.1f} "
            f"q/s  ({row['speedup']:.2f}x)"
        )
    updates = report["update_throughput"]
    print(
        f"updates    {updates['incremental_ms_per_delta']:.2f} ms/delta vs "
        f"refit {updates['full_refit_s']:.2f}s "
        f"({updates['speedup_vs_refit']:.0f}x), post-update p50 "
        f"{updates['post_update_query_p50_ms']:.2f} ms"
    )
    pool = report["pool_throughput"]
    print(
        f"pool       {pool['single_process_seeds_per_s']:.1f} -> "
        f"{pool['pool_seeds_per_s']:.1f} seeds/s "
        f"({pool['pool_speedup']:.2f}x, {pool['workers']} workers on "
        f"{pool['cpu_count']} cores, "
        f"bitwise_identical={pool['bitwise_identical']})"
    )
    obs = report["observability_overhead"]
    print(
        f"tracing    {obs['tracing_off_seeds_per_s']:.1f} -> "
        f"{obs['tracing_on_seeds_per_s']:.1f} seeds/s with every span "
        f"logged ({obs['overhead_pct']:+.2f}% overhead)"
    )
    ft = report["fault_tolerance"]
    print(
        f"wal        {ft['apply_ms_per_delta_no_wal']:.2f} -> "
        f"{ft['apply_ms_per_delta_wal_fsync']:.2f} ms/delta with "
        f"per-record fsync ({ft['wal_fsync_overhead_pct']:+.1f}%)"
    )
    print(
        f"one kill   {ft['clean_seeds_per_s']:.1f} -> "
        f"{ft['one_kill_seeds_per_s']:.1f} seeds/s, p95 "
        f"{ft['clean_p95_latency_ms']:.1f} -> "
        f"{ft['one_kill_p95_latency_ms']:.1f} ms "
        f"({ft['block_retries']} block retr(ies), "
        f"bitwise_identical={ft['bitwise_identical_through_kill']})"
    )
    scen = report["scenario_replay"]
    for side in ("service", "pool"):
        row = scen[side]
        print(
            f"replay/{side:7s} {row['queries']} queries over "
            f"{scen['scenario']['epochs']} epochs: p50 "
            f"{row['query_p50_ms']:.2f} ms, {row['updates_per_s']:.1f} "
            f"updates/s, recall {row['mean_tracking_recall']:.3f}, "
            f"verified={row['all_verified_bitwise']}"
        )
    print(f"report written to {args.out} ({report['wall_seconds']}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
