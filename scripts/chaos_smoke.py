#!/usr/bin/env python
"""Chaos smoke: SIGKILL a pool worker mid-stream, demand a perfect run.

Launches ``python -m repro serve --workers 2`` as a subprocess (the
exact deployment shape), waits for the first response, then SIGKILLs
one pool worker process out from under it.  The run must still end
perfectly:

* every query is answered — zero lost futures, zero error records;
* every answer is bitwise identical to a clean in-process run of the
  same query stream (the pool's governing contract, upheld through the
  kill via idempotent block retry);
* ``/stats`` records the supervision actually happening
  (``worker_restarts`` >= 1).

Exits non-zero with a reason on any violation.  Used by CI; also handy
manually::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

N_QUERIES = 240
LINGER_S = 15.0

SERVE_ARGS = [
    "--dataset", "cora", "--scale", "0.2",
    "--max-batch", "8", "--max-wait-ms", "25",
]


def kill_tree(proc: subprocess.Popen) -> None:
    """Kill serve *and* its pool workers (they share a process group)."""
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass
    try:
        proc.communicate(timeout=10)
    except subprocess.TimeoutExpired:
        pass


def fail(reason: str, proc: subprocess.Popen | None = None) -> "NoReturn":
    print(f"CHAOS SMOKE FAIL: {reason}", file=sys.stderr)
    if proc is not None:
        kill_tree(proc)
    sys.exit(1)


def scrape(port: int, path: str) -> str:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.read().decode()


def pool_worker_pids(serve_pid: int) -> list[int]:
    """The forked pool workers: children of serve whose cmdline is the
    serve cmdline (multiprocessing's resource tracker re-execs with its
    own cmdline, so this filter never selects it)."""
    children_path = Path(f"/proc/{serve_pid}/task/{serve_pid}/children")
    serve_cmdline = Path(f"/proc/{serve_pid}/cmdline").read_bytes()
    workers = []
    for pid in children_path.read_text().split():
        try:
            cmdline = Path(f"/proc/{pid}/cmdline").read_bytes()
        except OSError:
            continue  # raced an exit
        if cmdline == serve_cmdline:
            workers.append(int(pid))
    return workers


def expected_answers(queries: Path) -> list[dict]:
    """Clean in-process oracle run (--workers 0): the pool's contract is
    bitwise identity with exactly this."""
    result = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve",
            *SERVE_ARGS,
            "--queries", str(queries),
            "--workers", "0",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    if result.returncode != 0:
        fail(f"oracle run failed: {result.stderr[-500:]}")
    return [json.loads(line) for line in result.stdout.splitlines()]


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    queries = tmp / "queries.txt"
    queries.write_text("".join(f"{seed} 15\n" for seed in range(N_QUERIES)))

    oracle = expected_answers(queries)
    if len(oracle) != N_QUERIES:
        fail(f"oracle answered {len(oracle)}/{N_QUERIES} queries")

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            *SERVE_ARGS,
            "--queries", str(queries),
            "--workers", "2",
            "--metrics-port", "0",
            "--linger-s", str(LINGER_S),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        start_new_session=True,
    )

    # The port announcement races the fit; poll stderr line-by-line.
    port = None
    deadline = time.time() + 120.0
    stderr_seen = []
    while time.time() < deadline:
        line = proc.stderr.readline()
        if not line:
            if proc.poll() is not None:
                break
            continue
        stderr_seen.append(line)
        match = re.search(r"listening on http://127\.0\.0\.1:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        fail(f"metrics port never announced; stderr: {''.join(stderr_seen)}", proc)

    first = proc.stdout.readline()
    if not first:
        fail("serve exited before the first answer", proc)
    responses = [json.loads(first)]

    # Chaos: SIGKILL one pool worker while ~30 blocks are still queued.
    victims = pool_worker_pids(proc.pid)
    if len(victims) != 2:
        fail(f"expected 2 pool workers, found {victims}", proc)
    os.kill(victims[0], signal.SIGKILL)
    killed_at = len(responses)

    # Zero lost futures: every remaining line must still arrive.
    for _ in range(N_QUERIES - 1):
        line = proc.stdout.readline()
        if not line:
            fail(
                f"serve stopped after {len(responses)}/{N_QUERIES} answers "
                "(lost futures)", proc,
            )
        responses.append(json.loads(line))

    # The respawn trails the drain by the backoff delay; poll /stats
    # during the linger window until supervision has visibly completed.
    stats = json.loads(scrape(port, "/stats"))
    poll_deadline = time.time() + LINGER_S - 2.0
    while time.time() < poll_deadline and (
        stats.get("worker_restarts", 0) < 1
        or stats.get("workers_alive") != 2
    ):
        time.sleep(0.2)
        stats = json.loads(scrape(port, "/stats"))
    kill_tree(proc)

    # Bitwise identity with the clean oracle, kill or no kill.
    for got, want in zip(responses, oracle):
        if got["seed"] != want["seed"] or got["members"] != want["members"]:
            fail(
                f"answer diverged after the kill: seed {got['seed']} "
                f"got {got['members'][:8]}... want {want['members'][:8]}..."
            )

    if stats.get("worker_restarts", 0) < 1:
        fail(f"no recorded worker restart: {json.dumps(stats)[:300]}")
    if stats.get("errors", 0) != 0:
        fail(f"errors recorded during chaos run: {stats['errors_by_kind']}")
    if stats.get("workers_alive") != 2:
        fail(f"killed worker was not respawned: {stats.get('workers_alive')}")

    print(
        f"chaos smoke OK: worker {victims[0]} SIGKILLed after answer "
        f"{killed_at}, {N_QUERIES}/{N_QUERIES} answers bitwise-equal to "
        f"the in-process oracle, {stats['worker_restarts']} restart(s), "
        f"{stats['block_retries']} block retr(ies)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
