#!/usr/bin/env python
"""Observability smoke: serve through a real pool, scrape /metrics.

Launches ``python -m repro serve --workers 2 --metrics-port 0`` as a
subprocess (the exact deployment shape), parses the ephemeral port off
stderr, scrapes ``/metrics`` and ``/stats`` during the linger window,
and asserts the signals an operator would alarm on are present and
non-empty:

* Prometheus text parses (TYPE lines, cumulative histogram buckets);
* kernel-selection counters are non-empty — proof that engine
  introspection recorded in *worker processes* merged into the head
  registry across the IPC boundary;
* per-stage latency histograms and the touched-volume histogram carry
  one sample per request;
* every JSON response line carries a trace id, and the trace log holds
  one span per request.

Exits non-zero with a reason on any missing signal.  Used by CI; also
handy manually::

    PYTHONPATH=src python scripts/obs_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

N_QUERIES = 24
LINGER_S = 20.0


def kill_tree(proc: subprocess.Popen) -> None:
    """Kill serve *and* its pool workers (they share a process group)."""
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass
    try:
        proc.communicate(timeout=10)
    except subprocess.TimeoutExpired:
        pass


def fail(reason: str, proc: subprocess.Popen | None = None) -> "NoReturn":
    print(f"SMOKE FAIL: {reason}", file=sys.stderr)
    if proc is not None:
        kill_tree(proc)
    sys.exit(1)


def scrape(port: int, path: str) -> str:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.read().decode()


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="obs-smoke-"))
    queries = tmp / "queries.txt"
    queries.write_text("".join(f"{seed} 15\n" for seed in range(N_QUERIES)))
    trace_path = tmp / "trace.jsonl"

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", "cora", "--scale", "0.2",
            "--queries", str(queries),
            "--workers", "2",
            "--metrics-port", "0",
            "--trace-log", str(trace_path),
            "--linger-s", str(LINGER_S),
            "--stats",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        start_new_session=True,
    )

    # The port announcement races the fit; poll stderr line-by-line.
    port = None
    deadline = time.time() + 120.0
    stderr_seen = []
    while time.time() < deadline:
        line = proc.stderr.readline()
        if not line:
            if proc.poll() is not None:
                break
            continue
        stderr_seen.append(line)
        match = re.search(r"listening on http://127\.0\.0\.1:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        fail(f"metrics port never announced; stderr: {''.join(stderr_seen)}", proc)

    # Wait for all responses on stdout (the service then lingers).
    responses = []
    for _ in range(N_QUERIES):
        line = proc.stdout.readline()
        if not line:
            fail("serve exited before answering every query", proc)
        responses.append(json.loads(line))
    if not all(record.get("trace_id") for record in responses):
        fail("response lines missing trace ids", proc)

    metrics = scrape(port, "/metrics")
    stats = json.loads(scrape(port, "/stats"))
    health = scrape(port, "/healthz")
    kill_tree(proc)

    if health.strip() != "ok":
        fail(f"unexpected /healthz body: {health!r}")

    kernel_lines = [
        line for line in metrics.splitlines()
        if line.startswith("laca_kernel_selections_total{")
    ]
    if not kernel_lines:
        fail("no kernel-selection counters: worker metrics never merged")
    if sum(float(line.rsplit(" ", 1)[1]) for line in kernel_lines) <= 0:
        fail(f"kernel-selection counters all zero: {kernel_lines}")

    for needle in (
        "# TYPE laca_request_seconds histogram",
        "# TYPE laca_stage_seconds histogram",
        "# TYPE laca_touched_volume histogram",
        'laca_stage_seconds_bucket{stage="queue_wait",le="+Inf"}',
    ):
        if needle not in metrics:
            fail(f"missing from /metrics: {needle!r}")

    volume_count = re.search(r"^laca_touched_volume_count (\d+)$", metrics, re.M)
    if volume_count is None or int(volume_count.group(1)) != N_QUERIES:
        fail(
            f"touched-volume histogram should carry {N_QUERIES} samples, "
            f"got {volume_count and volume_count.group(1)}"
        )

    if stats.get("requests") != N_QUERIES or "p50_queue_wait_s" not in stats:
        fail(f"/stats malformed: {json.dumps(stats)[:300]}")

    spans = [
        json.loads(line)
        for line in trace_path.read_text().splitlines()
        if json.loads(line).get("event") == "request"
    ]
    if len(spans) != N_QUERIES:
        fail(f"trace log holds {len(spans)} spans, expected {N_QUERIES}")
    if not all("worker_id" in span for span in spans):
        fail("pool spans missing worker attribution")

    print(
        f"obs smoke OK: {N_QUERIES} traced requests over 2 workers, "
        f"{len(kernel_lines)} kernel counter(s) "
        f"({', '.join(line.split(' ')[0] for line in kernel_lines)}), "
        f"p50 queue wait {stats['p50_queue_wait_s'] * 1e3:.2f} ms"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
